/**
 * @file
 * FleetReport: the aggregate outcome of one fleet simulation —
 * per-device attack ground truth, detector alarms and offload
 * statistics, per-shard cluster ingest statistics, and fleet totals
 * — rendered as JSON.
 *
 * Determinism contract: toJson() is a pure function of simulation
 * state, which is itself a pure function of (config, seed). The same
 * seed and config must produce a byte-identical JSON document; the
 * golden test in tests/fleet/ pins one digest. Only virtual-time
 * quantities appear — never wall-clock, pointers, or hash-map
 * iteration order.
 */

#ifndef RSSD_FLEET_REPORT_HH
#define RSSD_FLEET_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "attack/ransomware.hh"
#include "core/offload.hh"
#include "core/rssd_device.hh"
#include "net/transport.hh"
#include "remote/backup_cluster.hh"
#include "remote/repair_engine.hh"
#include "sim/stats.hh"

namespace rssd::fleet {

/**
 * FleetReport JSON schema version. Bump ONLY when the document
 * layout changes (new/renamed/removed keys or reordered sections) —
 * every bump invalidates the golden digest pinned in
 * tests/fleet/fleet_determinism_test.cc, which is the point: digest
 * changes must be deliberate and documented, never accidental.
 *
 * History:
 *   1 — PR 3: initial FleetReport (no schema field).
 *   2 — PR 4: "schema" field added; emitted via sim::JsonWriter.
 *   3 — PR 5: retention-GC lifecycle — per-shard "rejectedBytes",
 *       "segmentsPruned", "bytesPruned", "heldStreams"; totals
 *       "segmentsPruned", "bytesPruned"; per-device
 *       "remoteRejects".
 *   4 — PR 6: replication & membership — "replication"/"liveShards"
 *       under "fleet"; per-device "replicas" array; per-shard
 *       "status" and "duplicates"; totals "quorumWrites",
 *       "quorumStalls", "partialWrites", "streamsMigrated",
 *       "segmentsMigrated", "bytesMigrated".
 *   5 — PR 7: anti-entropy repair & scrubbing — per-device
 *       "replicasLive" and "quarantinedCopies" (replication
 *       health); per-shard "quarantined"; new top-level "repair"
 *       object (repair/scrub counters, degraded and quarantined
 *       counts at end of run, convergence tick).
 *   6 — PR 8: latency attribution — totals "offloadAckP50Ns" and
 *       "offloadAckP99Ns" (the formerly report-invisible cluster
 *       backlog histogram); new top-level "latency" object with
 *       per-stage count/p50Ns/p99Ns/maxNs for the capsule
 *       lifecycle stages seal, queueWait, quorumWait, repairCopy.
 *   7 — PR 9: fleet health — per-device "parks"/"resubmits"
 *       (offload park/resubmit cycle counters); new top-level
 *       "health" object (sampler cadence and sample count, per-rule
 *       raise counts, the full edge-triggered alert sequence with
 *       raise/clear ticks, worst severity, open count).
 */
constexpr std::uint64_t kFleetReportSchema = 7;

/** One device's slice of the fleet outcome. */
struct DeviceReport
{
    std::uint32_t device = 0;
    /** Primary replica (the first member of the replica set). */
    remote::ShardId shard = 0;
    /** The full pinned replica set, ring order. */
    std::vector<remote::ShardId> replicas;
    /** Replication health at end of run: live copies out of R, and
     *  how many of them a scrub quarantined. */
    std::uint32_t replicasLive = 0;
    std::uint32_t quarantinedCopies = 0;
    std::string role;
    Tick attackStart = 0;

    /** Ground truth (attack == "benign" for clean devices). */
    attack::AttackReport attack;

    /** Victim pages still intact after the campaign (no recovery). */
    double victimIntact = 1.0;

    std::uint64_t alarms = 0;
    std::string firstAlarmDetector; ///< empty if no alarm
    Tick firstAlarmAt = 0;

    std::uint64_t benignOps = 0;
    core::RssdStats rssd;
    core::OffloadStats offload;
    net::TransportStats transport;
    Tick finishedAt = 0; ///< device virtual clock after final drain
};

/** One shard's slice of the cluster outcome. */
struct ShardReport
{
    remote::ShardId shard = 0;
    /** Membership state at the end of the run (shardStatusName). */
    std::string status = "live";
    std::uint64_t devices = 0;
    std::uint64_t segmentsAccepted = 0;
    std::uint64_t segmentsRejected = 0;
    /** Idempotent tail re-offers acked without storing twice. */
    std::uint64_t duplicates = 0;
    std::uint64_t rejectedBytes = 0;
    std::uint64_t batches = 0;
    double meanBatchSegments = 0.0;
    std::uint32_t maxBatchFill = 0;
    std::uint64_t backpressureStalls = 0;
    Tick backlogP50 = 0;
    Tick backlogP99 = 0;
    std::uint64_t usedBytes = 0;
    std::uint64_t capacityBytes = 0;
    /** Retention lifecycle (zeros when GC is disabled). */
    std::uint64_t segmentsPruned = 0;
    std::uint64_t bytesPruned = 0;
    std::uint64_t heldStreams = 0;
    /** Copies on this shard under scrub quarantine at end of run. */
    std::uint64_t quarantined = 0;
    bool chainOk = true;
};

/** One SLO rule's summary in the health block. */
struct HealthRuleReport
{
    std::string id;
    std::string metric;
    std::string severity;
    std::uint64_t raised = 0; ///< alerts this rule raised
    bool open = false;        ///< still breaching at end of run
};

/** One raise(/clear) episode in the health block. */
struct HealthAlertReport
{
    std::string rule;
    std::string severity;
    Tick raisedAt = 0;
    Tick clearedAt = 0; ///< 0 while open
    bool open = false;
    std::uint64_t observed = 0;
};

/**
 * The fleet health outcome: sampler cadence, per-rule raise counts
 * and the full alert sequence. Plain strings and integers (no obs
 * types) so the report stays a pure data object.
 */
struct HealthReport
{
    bool enabled = false;
    Tick interval = 0;
    std::uint64_t samples = 0;
    Tick lastSampleAt = 0;
    std::uint64_t alertsRaised = 0;
    std::uint64_t alertsOpen = 0;
    std::string worstSeverity = "info";
    std::vector<HealthRuleReport> rules;
    std::vector<HealthAlertReport> alerts;
};

struct FleetReport
{
    // -- Config echo ----------------------------------------------------
    std::uint32_t devices = 0;
    std::uint32_t shards = 0;
    std::uint32_t replication = 1;
    std::uint32_t liveShards = 0;
    std::string scenario;
    std::uint64_t seed = 0;
    std::uint64_t opsPerDevice = 0;

    std::vector<DeviceReport> deviceReports;
    std::vector<ShardReport> shardReports;

    // -- Fleet totals ----------------------------------------------------
    std::uint64_t totalPagesEncrypted = 0;
    std::uint64_t totalPagesTrimmed = 0;
    std::uint64_t totalJunkPages = 0;
    std::uint64_t totalAlarms = 0;
    std::uint64_t totalSegments = 0;
    std::uint64_t totalBytesStored = 0;
    std::uint64_t totalBackpressureStalls = 0;
    std::uint64_t totalSegmentsPruned = 0;
    std::uint64_t totalBytesPruned = 0;
    /** Replication & membership counters (quorum writes/stalls,
     *  migration volume) — cluster-wide. */
    remote::ReplicationStats replicationStats;

    // -- Anti-entropy repair & scrubbing --------------------------------
    bool repairEnabled = false;
    remote::RepairStats repairStats;
    /** Degraded replica sets / quarantined copies left at end of
     *  run (with repair enabled both must be zero). */
    std::uint64_t degradedAtEnd = 0;
    std::uint64_t quarantinedAtEnd = 0;
    /** Tick at which repair + scrub fully converged (0 when repair
     *  is disabled). */
    Tick repairConvergedAt = 0;

    // -- Latency attribution (capsule lifecycle stages) ------------------
    /** Device seal work: segment close to sealed capsule ready. */
    LatencyHistogram sealLatency;
    /** Shard admission: ingest arrival to service start (accepted). */
    LatencyHistogram queueWaitLatency;
    /** Quorum wait: cluster arrival to quorum-th replica ack. */
    LatencyHistogram quorumWaitLatency;
    /** Repair copies: target-shard ingest arrival to ack. */
    LatencyHistogram repairCopyLatency;
    /** End-to-end shard backlog (arrival to ack, accepted only) —
     *  merged across shards for the totals' offload-ack view. */
    LatencyHistogram offloadAckLatency;

    // -- Health & SLOs ---------------------------------------------------
    HealthReport health;

    Tick makespan = 0; ///< latest device clock at completion
    bool allChainsOk = true;

    /** Render the whole report as a stable-key-order JSON document. */
    std::string toJson() const;
};

} // namespace rssd::fleet

#endif // RSSD_FLEET_REPORT_HH
