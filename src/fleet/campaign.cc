#include "fleet/campaign.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace rssd::fleet {

const char *
scenarioName(Scenario s)
{
    switch (s) {
      case Scenario::Benign: return "benign";
      case Scenario::Outbreak: return "outbreak";
      case Scenario::Staggered: return "staggered";
      case Scenario::ShardFlood: return "shard-flood";
    }
    return "?";
}

Scenario
scenarioByName(const std::string &name)
{
    for (Scenario s : {Scenario::Benign, Scenario::Outbreak,
                       Scenario::Staggered, Scenario::ShardFlood}) {
        if (name == scenarioName(s))
            return s;
    }
    fatal("unknown scenario \"" + name +
          "\" (benign|outbreak|staggered|shard-flood)");
}

const char *
roleName(DeviceRole role)
{
    switch (role) {
      case DeviceRole::Benign: return "benign";
      case DeviceRole::Encryptor: return "encryptor";
      case DeviceRole::Flooder: return "flooder";
    }
    return "?";
}

std::vector<DevicePlan>
planCampaign(const CampaignConfig &config, std::uint32_t devices,
             const remote::BackupCluster &cluster)
{
    std::vector<DevicePlan> plans(devices);
    switch (config.scenario) {
      case Scenario::Benign:
        break;

      case Scenario::Outbreak:
        for (auto &p : plans) {
            p.role = DeviceRole::Encryptor;
            p.attackStart = config.attackStart;
        }
        break;

      case Scenario::Staggered:
        for (std::uint32_t i = 0; i < devices; i++) {
            plans[i].role = DeviceRole::Encryptor;
            plans[i].attackStart =
                config.attackStart + i * config.stagger;
        }
        break;

      case Scenario::ShardFlood: {
        // Target the shard carrying the most device streams (ties
        // break toward the lowest shard id — deterministic).
        remote::ShardId hot = 0;
        std::size_t hot_count = 0;
        for (remote::ShardId s = 0; s < cluster.shardCount(); s++) {
            const std::size_t n = cluster.shardDevices(s).size();
            if (n > hot_count) {
                hot = s;
                hot_count = n;
            }
        }
        for (std::uint32_t i = 0; i < devices; i++) {
            plans[i].role = cluster.shardOfDevice(i) == hot
                ? DeviceRole::Flooder
                : DeviceRole::Encryptor;
            plans[i].attackStart = config.attackStart;
        }
        break;
      }
    }
    return plans;
}

// ---------------------------------------------------------------------
// FleetAttacker
// ---------------------------------------------------------------------

FleetAttacker::FleetAttacker(const Params &params,
                             const attack::AttackConfig &config)
    : Ransomware(config), params_(params)
{
    panicIf(params.role == DeviceRole::Benign,
            "FleetAttacker: benign devices have no attacker");
}

const char *
FleetAttacker::name() const
{
    return params_.role == DeviceRole::Flooder ? "shard-flood"
                                               : "fleet-classic";
}

void
FleetAttacker::begin(nvme::BlockDevice &device,
                     const attack::VictimDataset &victim, Tick now)
{
    panicIf(begun_, "FleetAttacker: begin() twice");
    begun_ = true;
    victim_ = &victim;
    report_.attack = name();
    report_.startedAt = now;
    report_.finishedAt = now;

    if (params_.role == DeviceRole::Flooder) {
        const std::uint64_t capacity = device.capacityPages();
        floodSpan_ = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   static_cast<double>(capacity) *
                   params_.floodSpanFraction));
        floodBase_ = capacity - floodSpan_;
        junk_ = std::make_unique<compress::DataGenerator>(rng_.next(),
                                                          0.0);
    }
}

bool
FleetAttacker::done() const
{
    if (!begun_)
        return false;
    const bool enc_done = encIdx_ >= victim_->pages();
    const std::uint64_t flood_total =
        params_.role == DeviceRole::Flooder ? params_.floodPages : 0;
    return enc_done && floodIdx_ >= flood_total;
}

void
FleetAttacker::step(nvme::BlockDevice &device, VirtualClock &clock)
{
    panicIf(!begun_, "FleetAttacker: step() before begin()");
    if (encIdx_ < victim_->pages()) {
        encryptInPlace(device, victim_->firstLpa() + encIdx_, report_);
        encIdx_++;
    } else if (params_.role == DeviceRole::Flooder &&
               floodIdx_ < params_.floodPages) {
        const attack::Lpa lpa = floodBase_ + (floodIdx_ % floodSpan_);
        const nvme::Completion comp =
            device.writePage(lpa, junk_->page(device.pageSize()));
        if (comp.ok())
            report_.junkPagesWritten++;
        else
            report_.writeErrors++;
        floodIdx_++;
    }
    report_.finishedAt = clock.now();
}

attack::AttackReport
FleetAttacker::run(nvme::BlockDevice &device, VirtualClock &clock,
                   const attack::VictimDataset &victim)
{
    begin(device, victim, clock.now());
    while (!done())
        step(device, clock);
    return report_;
}

} // namespace rssd::fleet
