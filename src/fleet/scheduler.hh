/**
 * @file
 * FleetScheduler: a deterministic discrete-event simulation of many
 * RssdDevices offloading into one sharded BackupCluster.
 *
 * Model. Each device is an *actor* with its own VirtualClock, RNG
 * stream, workload generator, Ethernet link and NVMe-oE transport;
 * the only shared state is the cluster at the far end of the wire.
 * The scheduler keeps a single event queue of (wakeup tick, device)
 * pairs ordered by time with device id as the tie-break, so the
 * interleaving — and therefore every byte of the FleetReport — is a
 * pure function of the fleet config and seed. Per-device RNG streams
 * are drawn from one master xoshiro sequence in device-id order,
 * which keeps device k's behavior identical no matter how many other
 * devices run beside it.
 *
 * Each wakeup issues one host operation: an attack step when the
 * device's campaign role is active, one generated trace request
 * otherwise. Device clocks advance through their own submit paths
 * (latency accounting), and the gap to the next wakeup is an
 * integer-jittered think time — no floating-point time arithmetic on
 * the event spine.
 */

#ifndef RSSD_FLEET_SCHEDULER_HH
#define RSSD_FLEET_SCHEDULER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/rssd_config.hh"
#include "fleet/campaign.hh"
#include "fleet/report.hh"
#include "forensics/forensics.hh"
#include "obs/health.hh"
#include "obs/metrics.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"
#include "remote/backup_cluster.hh"
#include "remote/repair_engine.hh"
#include "workload/profiles.hh"

namespace rssd::fleet {

/** A scripted cluster-membership change during the run. */
enum class MembershipKind : std::uint8_t {
    CrashShard, ///< fail-stop, no migration: replica copies die
    JoinShard,  ///< grow + rebalance (stream migration onto joiner)
    LeaveShard, ///< graceful drain: migrate off, then depart
};

struct MembershipEvent
{
    Tick at = 0;
    MembershipKind kind = MembershipKind::CrashShard;
    /** Target shard (ignored for JoinShard — the joiner gets the
     *  next fresh id). */
    remote::ShardId shard = 0;
};

/**
 * A scripted silent-corruption fault: at tick @p at, flip payload
 * bytes in one stored copy of @p device's stream without touching
 * the tail metadata — the fault class only integrity scrubbing can
 * catch. Rides the DES spine like membership events, so the injected
 * rot lands at a deterministic point in the interleaving.
 */
struct BitRotEvent
{
    Tick at = 0;
    remote::DeviceId device = 0;
    /** Which live copy-holding replica to rot (mod live holders). */
    std::uint32_t replicaIdx = 0;
    /** Stored-segment index, clamped to the copy's current size. */
    std::uint64_t segmentIdx = 0;
};

/**
 * The fleet health layer: a TimeSeriesSampler actor on the DES
 * spine plus a HealthMonitor evaluating SLO rules at every sample.
 * Disabled by default (interval == 0) — enabling it is read-only
 * with respect to the simulation: the run, and every non-health
 * byte of the FleetReport, is identical with health on or off.
 */
struct HealthConfig
{
    /** Sampling cadence in sim time; 0 disables the health layer. */
    Tick interval = 0;

    /** SLO rules; empty means defaultHealthRules(config). */
    std::vector<obs::HealthRule> rules;
};

struct FleetConfig
{
    std::uint32_t devices = 8;
    std::uint32_t shards = 2;

    /** Replica-set size per device stream (overrides
     *  cluster.replication; must be <= shards). */
    std::uint32_t replication = 1;

    std::uint64_t seed = 1;

    /** Benign trace requests per device (attack ops are extra). */
    std::uint64_t opsPerDevice = 400;

    /** Mean think time between a device's operations. */
    Tick meanOpGap = 200 * units::US;

    /** Per-device configuration template (keySeed is per-device). */
    core::RssdConfig device = core::RssdConfig::forTests();

    /** Cluster topology and ingest-queue knobs (shards overrides
     *  cluster.shards). */
    remote::BackupClusterConfig cluster;

    /** Benign traffic shape (every device runs this profile with its
     *  own RNG stream). */
    workload::TraceProfile profile;

    CampaignConfig campaign;

    /**
     * Scripted membership changes (crash / join / leave), applied
     * on the shared event spine at their tick — a membership event
     * at tick T sorts after every device wakeup at T, so the
     * interleaving stays a pure function of config and seed. A
     * crash mid-campaign is the paper's evidence-loss scenario:
     * with R >= 2 forensics and recovery read entirely from the
     * surviving replicas.
     */
    std::vector<MembershipEvent> membership;

    /** Scripted bit-rot faults (see BitRotEvent); a no-op when the
     *  targeted copy holds no segments yet. */
    std::vector<BitRotEvent> bitRot;

    /**
     * Anti-entropy repair and integrity scrubbing. When enabled the
     * RepairEngine rides the DES spine at repair.tickInterval, so
     * repair copies contend with foreground quorum writes on the
     * shard workers deterministically; after the fleet drains, the
     * engine runs to full convergence (zero degraded sets, one
     * clean scrub pass) before the report is aggregated.
     */
    remote::RepairEngineConfig repair;

    /** Periodic health telemetry + SLO alerting (off by default). */
    HealthConfig health;

    /** Attach per-device online detectors and report their alarms. */
    bool attachDetectors = true;

    /**
     * Suspicion-aware retention: the moment a device's detectors
     * first alarm, flag its stream with an eviction hold on the
     * cluster, so retention GC cannot flood the victim's evidence
     * out of the window. Only meaningful when the shard stores run
     * with GC enabled (cluster.shard.retention).
     */
    bool suspicionHolds = true;
};

/**
 * The stock SLO rule set for a fleet shaped like @p config — the
 * conditions this fleet can already get into, with thresholds that
 * stay quiet on a healthy run:
 *
 *   quorum_stall   quorum writes kept waiting on a replica
 *   offload_parked remote store refusing segments (park/resubmit)
 *   shard_backlog  an ingest queue pinned at its admission limit
 *   gc_reject      rejects persisting while retention GC runs
 *   repair_debt    degraded replica sets outstanding too long
 *   scrub_rot      integrity scrubbing finding corrupted copies
 *
 * Repair rules appear only when config.repair is enabled (their
 * metrics exist only then; a rule naming an absent metric panics).
 */
std::vector<obs::HealthRule>
defaultHealthRules(const FleetConfig &config);

class FleetScheduler
{
  public:
    explicit FleetScheduler(const FleetConfig &config);
    ~FleetScheduler();

    FleetScheduler(const FleetScheduler &) = delete;
    FleetScheduler &operator=(const FleetScheduler &) = delete;

    /**
     * Run the fleet to completion (all benign ops issued, all attacks
     * finished, all offload queues drained) and aggregate the
     * outcome. Call once.
     */
    FleetReport run();

    remote::BackupCluster &cluster() { return *cluster_; }
    const remote::BackupCluster &cluster() const { return *cluster_; }

    /** The anti-entropy engine (nullptr when repair is disabled). */
    remote::RepairEngine *repairEngine() { return engine_.get(); }

    /**
     * Post-campaign analysis hook: run the cluster-side forensics
     * pipeline over the evidence this fleet offloaded, then execute
     * the recovery plan against the still-live devices (restoring
     * each compromised device to its recommended recovery point
     * from its shard). Requires run() to have completed. Repeated
     * calls reuse the scanner's verified-prefix cache, so a second
     * pass after more evidence arrives is O(new).
     */
    forensics::ForensicsReport
    runForensics(const forensics::ForensicsConfig &config = {});

    /**
     * The campaign's ground truth — which devices actually turned,
     * when, and who was first. Exported for scoring the forensics
     * conclusions; the analysis itself never reads it.
     */
    forensics::GroundTruth groundTruth() const;

    std::uint32_t deviceCount() const;
    core::RssdDevice &device(std::uint32_t idx);
    const DevicePlan &plan(std::uint32_t idx) const;

    // -- Observability ----------------------------------------------------

    /**
     * Attach a trace sink before run(): every capsule lifecycle
     * stage — device seal, offload park/retry, shard queue wait,
     * batch, quorum ack, repair copy, scrub step, GC prune,
     * membership change — lands on the sink as tick-stamped events
     * on fixed tracks (obs::kTrack*). Tracing is strictly read-only:
     * the run, and every byte of the FleetReport, is identical with
     * or without a sink attached. Pass nullptr to detach.
     */
    void attachTrace(obs::TraceSink *sink);

    /**
     * Register the fleet's instruments on @p registry: per-device
     * offload engines ("device.<id>.offload."), the cluster and its
     * shards ("cluster.", "cluster.shard.<id>."), and the repair
     * engine ("repair.", when enabled). Call before run(); sampling
     * happens at snapshotJson() time.
     */
    void registerMetrics(obs::MetricsRegistry &registry) const;

    // -- Health layer (config.health.interval > 0) ------------------------

    /** The spine-driven sampler, nullptr when health is disabled. */
    const obs::TimeSeriesSampler *healthSampler() const
    {
        return sampler_.get();
    }

    /** The SLO rule engine, nullptr when health is disabled. */
    const obs::HealthMonitor *healthMonitor() const
    {
        return monitor_.get();
    }

    /** The accumulated time-series JSONL (empty when disabled). */
    const std::string &healthTimeSeriesJsonl() const;

    /** Scanner created by runForensics() (nullptr before the first
     *  analysis pass) — lets CLIs register its scan-cost metrics. */
    forensics::EvidenceScanner *evidenceScanner()
    {
        return scanner_.get();
    }

  private:
    struct Actor;

    /** One wakeup for @p actor: issue one op, return the next wakeup
     *  tick, or 0 when the actor is finished. */
    Tick step(Actor &actor);

    /** Apply one scripted bit-rot fault (no-op on an empty copy). */
    void applyBitRot(const BitRotEvent &event);

    FleetReport aggregate();

    FleetConfig config_;
    std::unique_ptr<remote::BackupCluster> cluster_;
    std::unique_ptr<remote::RepairEngine> engine_;
    Tick repairConvergedAt_ = 0;
    /** Health layer (config_.health.interval > 0): a private
     *  registry sampled by the spine actor, rules bound over it. */
    obs::MetricsRegistry healthRegistry_;
    std::unique_ptr<obs::TimeSeriesSampler> sampler_;
    std::unique_ptr<obs::HealthMonitor> monitor_;
    /** Lazily created by runForensics(); kept so repeated analysis
     *  passes resume from the verified prefix. */
    std::unique_ptr<forensics::EvidenceScanner> scanner_;
    std::vector<std::unique_ptr<Actor>> actors_;
    std::vector<DevicePlan> plans_;
    /** Per-device (victim seed, attacker seed), drawn at attach time
     *  but consumed only for devices the campaign infects. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> actorSeeds_;
    obs::TraceSink *trace_ = nullptr;
    bool ran_ = false;
};

} // namespace rssd::fleet

#endif // RSSD_FLEET_SCHEDULER_HH
