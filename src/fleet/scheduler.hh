/**
 * @file
 * FleetScheduler: a deterministic discrete-event simulation of many
 * RssdDevices offloading into one sharded BackupCluster.
 *
 * Model. Each device is an *actor* with its own VirtualClock, RNG
 * stream, workload generator, Ethernet link and NVMe-oE transport;
 * the only shared state is the cluster at the far end of the wire.
 * The scheduler keeps a single event queue of (wakeup tick, device)
 * pairs ordered by time with device id as the tie-break, so the
 * interleaving — and therefore every byte of the FleetReport — is a
 * pure function of the fleet config and seed. Per-device RNG streams
 * are drawn from one master xoshiro sequence in device-id order,
 * which keeps device k's behavior identical no matter how many other
 * devices run beside it.
 *
 * Each wakeup issues one host operation: an attack step when the
 * device's campaign role is active, one generated trace request
 * otherwise. Device clocks advance through their own submit paths
 * (latency accounting), and the gap to the next wakeup is an
 * integer-jittered think time — no floating-point time arithmetic on
 * the event spine.
 */

#ifndef RSSD_FLEET_SCHEDULER_HH
#define RSSD_FLEET_SCHEDULER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/rssd_config.hh"
#include "fleet/campaign.hh"
#include "fleet/report.hh"
#include "forensics/forensics.hh"
#include "remote/backup_cluster.hh"
#include "workload/profiles.hh"

namespace rssd::fleet {

/** A scripted cluster-membership change during the run. */
enum class MembershipKind : std::uint8_t {
    CrashShard, ///< fail-stop, no migration: replica copies die
    JoinShard,  ///< grow + rebalance (stream migration onto joiner)
    LeaveShard, ///< graceful drain: migrate off, then depart
};

struct MembershipEvent
{
    Tick at = 0;
    MembershipKind kind = MembershipKind::CrashShard;
    /** Target shard (ignored for JoinShard — the joiner gets the
     *  next fresh id). */
    remote::ShardId shard = 0;
};

struct FleetConfig
{
    std::uint32_t devices = 8;
    std::uint32_t shards = 2;

    /** Replica-set size per device stream (overrides
     *  cluster.replication; must be <= shards). */
    std::uint32_t replication = 1;

    std::uint64_t seed = 1;

    /** Benign trace requests per device (attack ops are extra). */
    std::uint64_t opsPerDevice = 400;

    /** Mean think time between a device's operations. */
    Tick meanOpGap = 200 * units::US;

    /** Per-device configuration template (keySeed is per-device). */
    core::RssdConfig device = core::RssdConfig::forTests();

    /** Cluster topology and ingest-queue knobs (shards overrides
     *  cluster.shards). */
    remote::BackupClusterConfig cluster;

    /** Benign traffic shape (every device runs this profile with its
     *  own RNG stream). */
    workload::TraceProfile profile;

    CampaignConfig campaign;

    /**
     * Scripted membership changes (crash / join / leave), applied
     * on the shared event spine at their tick — a membership event
     * at tick T sorts after every device wakeup at T, so the
     * interleaving stays a pure function of config and seed. A
     * crash mid-campaign is the paper's evidence-loss scenario:
     * with R >= 2 forensics and recovery read entirely from the
     * surviving replicas.
     */
    std::vector<MembershipEvent> membership;

    /** Attach per-device online detectors and report their alarms. */
    bool attachDetectors = true;

    /**
     * Suspicion-aware retention: the moment a device's detectors
     * first alarm, flag its stream with an eviction hold on the
     * cluster, so retention GC cannot flood the victim's evidence
     * out of the window. Only meaningful when the shard stores run
     * with GC enabled (cluster.shard.retention).
     */
    bool suspicionHolds = true;
};

class FleetScheduler
{
  public:
    explicit FleetScheduler(const FleetConfig &config);
    ~FleetScheduler();

    FleetScheduler(const FleetScheduler &) = delete;
    FleetScheduler &operator=(const FleetScheduler &) = delete;

    /**
     * Run the fleet to completion (all benign ops issued, all attacks
     * finished, all offload queues drained) and aggregate the
     * outcome. Call once.
     */
    FleetReport run();

    remote::BackupCluster &cluster() { return *cluster_; }
    const remote::BackupCluster &cluster() const { return *cluster_; }

    /**
     * Post-campaign analysis hook: run the cluster-side forensics
     * pipeline over the evidence this fleet offloaded, then execute
     * the recovery plan against the still-live devices (restoring
     * each compromised device to its recommended recovery point
     * from its shard). Requires run() to have completed. Repeated
     * calls reuse the scanner's verified-prefix cache, so a second
     * pass after more evidence arrives is O(new).
     */
    forensics::ForensicsReport
    runForensics(const forensics::ForensicsConfig &config = {});

    /**
     * The campaign's ground truth — which devices actually turned,
     * when, and who was first. Exported for scoring the forensics
     * conclusions; the analysis itself never reads it.
     */
    forensics::GroundTruth groundTruth() const;

    std::uint32_t deviceCount() const;
    core::RssdDevice &device(std::uint32_t idx);
    const DevicePlan &plan(std::uint32_t idx) const;

  private:
    struct Actor;

    /** One wakeup for @p actor: issue one op, return the next wakeup
     *  tick, or 0 when the actor is finished. */
    Tick step(Actor &actor);

    FleetReport aggregate();

    FleetConfig config_;
    std::unique_ptr<remote::BackupCluster> cluster_;
    /** Lazily created by runForensics(); kept so repeated analysis
     *  passes resume from the verified prefix. */
    std::unique_ptr<forensics::EvidenceScanner> scanner_;
    std::vector<std::unique_ptr<Actor>> actors_;
    std::vector<DevicePlan> plans_;
    /** Per-device (victim seed, attacker seed), drawn at attach time
     *  but consumed only for devices the campaign infects. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> actorSeeds_;
    bool ran_ = false;
};

} // namespace rssd::fleet

#endif // RSSD_FLEET_SCHEDULER_HH
