#include "fleet/scheduler.hh"

#include <algorithm>
#include <queue>
#include <string>
#include <utility>

#include "compress/datagen.hh"
#include "core/history.hh"
#include "core/recovery.hh"
#include "detect/detector.hh"
#include "sim/logging.hh"
#include "workload/generator.hh"

namespace rssd::fleet {

/**
 * One simulated machine: an RSSD with its own clock, link, RNG
 * stream, benign workload, and (if the campaign says so) malware.
 */
struct FleetScheduler::Actor
{
    Actor(std::uint32_t id_, const core::RssdConfig &device_cfg,
          remote::BackupCluster &cluster,
          const workload::TraceProfile &profile, std::uint64_t rng_seed,
          std::uint64_t gen_seed, std::uint64_t content_seed)
        : id(id_),
          portal(cluster, id_),
          dev(std::make_unique<core::RssdDevice>(device_cfg, clock,
                                                 portal)),
          rng(rng_seed),
          gen(profile, dev->capacityPages(), gen_seed),
          contentGen(content_seed, profile.compressibility)
    {
    }

    /** Issue one generated benign trace request. */
    void
    issueBenign()
    {
        const workload::Request r = gen.next();
        nvme::Command cmd;
        cmd.op = r.op;
        cmd.lpa = r.lpa;
        cmd.npages = r.npages;
        if (r.op == nvme::Opcode::Write) {
            const std::uint32_t page_size = dev->pageSize();
            cmd.data.reserve(std::size_t(r.npages) * page_size);
            for (std::uint32_t p = 0; p < r.npages; p++) {
                const auto page = contentGen.page(page_size);
                cmd.data.insert(cmd.data.end(), page.begin(),
                                page.end());
            }
        }
        dev->submit(cmd);
        benignOps++;
    }

    std::uint32_t id;
    VirtualClock clock;
    remote::ClusterPortal portal;
    std::unique_ptr<core::RssdDevice> dev;
    Rng rng;
    workload::TraceGenerator gen;
    compress::DataGenerator contentGen;

    std::unique_ptr<attack::VictimDataset> victim;
    std::unique_ptr<FleetAttacker> attacker;
    std::vector<std::unique_ptr<detect::Detector>> detectors;

    std::uint64_t benignOps = 0;
    std::uint64_t steps = 0;
    bool holdFlagged = false; ///< eviction hold already placed
};

FleetScheduler::FleetScheduler(const FleetConfig &config)
    : config_(config)
{
    panicIf(config.devices == 0, "FleetScheduler: zero devices");
    panicIf(config.shards == 0, "FleetScheduler: zero shards");
    panicIf(config.meanOpGap == 0, "FleetScheduler: meanOpGap == 0");
    panicIf(config.replication == 0,
            "FleetScheduler: replication == 0");
    panicIf(config.replication > config.shards,
            "FleetScheduler: replication exceeds shards");

    remote::BackupClusterConfig cluster_cfg = config_.cluster;
    cluster_cfg.shards = config_.shards;
    cluster_cfg.replication = config_.replication;
    cluster_ = std::make_unique<remote::BackupCluster>(cluster_cfg);

    if (config_.repair.enabled) {
        // The engine registers itself as the cluster's repair
        // observer: crashShard()/quarantineCopy() feed its queue
        // from the moment the degradation exists.
        engine_ = std::make_unique<remote::RepairEngine>(
            *cluster_, config_.repair);
    }

    // Per-device seeds come off one master stream in device-id order:
    // device k's whole behavior is independent of fleet size.
    Rng master(config_.seed);

    for (std::uint32_t id = 0; id < config_.devices; id++) {
        const std::uint64_t rng_seed = master.next();
        const std::uint64_t gen_seed = master.next();
        const std::uint64_t content_seed = master.next();
        const std::uint64_t victim_seed = master.next();
        const std::uint64_t attack_seed = master.next();

        core::RssdConfig dev_cfg = config_.device;
        dev_cfg.keySeed = config_.device.keySeed + "#fleet-" +
                          std::to_string(id);

        auto actor = std::make_unique<Actor>(
            id, dev_cfg, *cluster_, config_.profile, rng_seed,
            gen_seed, content_seed);
        cluster_->attachDevice(id, actor->dev->codec());

        if (config_.attachDetectors) {
            // Fleet-tuned entropy detector: smaller window and lower
            // thresholds than the controller defaults, so a 32-page
            // per-device encryption burst is visible.
            detect::EntropyOverwriteDetector::Config ec;
            ec.windowOps = 256;
            ec.alarmRatio = 0.08;
            ec.minFlagged = 12;
            actor->detectors.push_back(
                std::make_unique<detect::EntropyOverwriteDetector>(
                    ec));
            actor->detectors.push_back(
                std::make_unique<detect::WriteBurstDetector>());
            for (auto &d : actor->detectors)
                actor->dev->attachDetector(d.get());
        }

        actorSeeds_.push_back({victim_seed, attack_seed});
        actors_.push_back(std::move(actor));
    }

    plans_ = planCampaign(config_.campaign, config_.devices,
                          *cluster_);

    for (std::uint32_t id = 0; id < config_.devices; id++) {
        const DevicePlan &plan = plans_[id];
        if (plan.role == DeviceRole::Benign)
            continue;
        Actor &a = *actors_[id];
        a.victim = std::make_unique<attack::VictimDataset>(
            0, config_.campaign.victimPages, 0.7,
            actorSeeds_[id].first);
        a.victim->populate(*a.dev);

        FleetAttacker::Params params;
        params.role = plan.role;
        params.floodPages = config_.campaign.floodPages;
        params.floodSpanFraction = config_.campaign.floodSpanFraction;
        attack::AttackConfig attack_cfg;
        attack_cfg.attackerKeySeed =
            "r4ns0m-fleet-" + std::to_string(id);
        attack_cfg.rngSeed = actorSeeds_[id].second;
        a.attacker =
            std::make_unique<FleetAttacker>(params, attack_cfg);
    }

    if (config_.health.interval > 0) {
        // The health layer rides a private registry so the CLIs'
        // own registries stay independent. Rules bind by metric
        // name now — a rule naming an absent metric panics here,
        // not silently at the first sample.
        registerMetrics(healthRegistry_);
        sampler_ = std::make_unique<obs::TimeSeriesSampler>(
            healthRegistry_);
        std::vector<obs::HealthRule> rules =
            config_.health.rules.empty() ? defaultHealthRules(config_)
                                         : config_.health.rules;
        monitor_ = std::make_unique<obs::HealthMonitor>(
            *sampler_, std::move(rules));
    }
}

FleetScheduler::~FleetScheduler() = default;

std::uint32_t
FleetScheduler::deviceCount() const
{
    return static_cast<std::uint32_t>(actors_.size());
}

core::RssdDevice &
FleetScheduler::device(std::uint32_t idx)
{
    panicIf(idx >= actors_.size(), "FleetScheduler: device idx OOB");
    return *actors_[idx]->dev;
}

const DevicePlan &
FleetScheduler::plan(std::uint32_t idx) const
{
    panicIf(idx >= plans_.size(), "FleetScheduler: device idx OOB");
    return plans_[idx];
}

void
FleetScheduler::attachTrace(obs::TraceSink *sink)
{
    panicIf(ran_, "FleetScheduler: attachTrace after run()");
    trace_ = sink;
    for (auto &actor : actors_)
        actor->dev->offload().attachTrace(sink, actor->id);
    cluster_->attachTrace(sink);
    if (engine_)
        engine_->attachTrace(sink);
    if (monitor_)
        monitor_->attachTrace(sink);
    if (sink == nullptr)
        return;
    sink->setProcessName(obs::kTrackDevices, "devices");
    sink->setProcessName(obs::kTrackCluster, "cluster");
    sink->setProcessName(obs::kTrackRepair, "repair");
    sink->setProcessName(obs::kTrackFleet, "fleet");
    for (const auto &actor : actors_) {
        sink->setThreadName(obs::kTrackDevices, actor->id,
                            "device " + std::to_string(actor->id));
    }
    for (remote::ShardId s = 0; s < cluster_->shardCount(); s++) {
        sink->setThreadName(obs::kTrackCluster, s,
                            "shard " + std::to_string(s));
    }
}

void
FleetScheduler::registerMetrics(obs::MetricsRegistry &registry) const
{
    for (const auto &actor : actors_) {
        actor->dev->offload().registerMetrics(
            registry,
            "device." + std::to_string(actor->id) + ".offload.");
    }
    cluster_->registerMetrics(registry, "cluster.");
    if (engine_)
        engine_->registerMetrics(registry, "repair.");

    // Fleet-wide offload aggregates: the health rules watch the
    // fleet, not one device, so the park/resubmit/reject totals are
    // summed across every actor at sample time.
    registry.counter("fleet.offloadParks", [this] {
        std::uint64_t n = 0;
        for (const auto &actor : actors_)
            n += actor->dev->offload().stats().parks;
        return n;
    });
    registry.counter("fleet.offloadResubmits", [this] {
        std::uint64_t n = 0;
        for (const auto &actor : actors_)
            n += actor->dev->offload().stats().resubmits;
        return n;
    });
    registry.counter("fleet.remoteRejects", [this] {
        std::uint64_t n = 0;
        for (const auto &actor : actors_)
            n += actor->dev->offload().stats().remoteRejects;
        return n;
    });
}

const std::string &
FleetScheduler::healthTimeSeriesJsonl() const
{
    static const std::string kEmpty;
    return sampler_ ? sampler_->jsonl() : kEmpty;
}

std::vector<obs::HealthRule>
defaultHealthRules(const FleetConfig &config)
{
    using obs::Cmp;
    using obs::HealthRule;
    using obs::Severity;
    using obs::Signal;

    std::vector<HealthRule> rules;

    // Quorum writes kept waiting: live replicas below the write
    // quorum. Never happens on a healthy ring, so any sustained
    // stall rate is a real incident.
    {
        HealthRule r;
        r.id = "quorum_stall";
        r.metric = "cluster.quorumStalls";
        r.signal = Signal::Rate;
        r.cmp = Cmp::Gt;
        r.threshold = 0;
        r.holdFor = 2 * units::MS;
        r.severity = Severity::Warn;
        rules.push_back(r);
    }
    // The remote store refusing segments: devices are parking
    // sealed bytes and burning resubmit probes.
    {
        HealthRule r;
        r.id = "offload_parked";
        r.metric = "fleet.offloadParks";
        r.signal = Signal::Rate;
        r.cmp = Cmp::Gt;
        r.threshold = 0;
        r.holdFor = 2 * units::MS;
        r.severity = Severity::Warn;
        rules.push_back(r);
    }
    // An ingest queue pinned at its admission limit — the point
    // where backpressure turns into rejects.
    {
        HealthRule r;
        r.id = "shard_backlog";
        r.metric = "cluster.pendingMax";
        r.signal = Signal::Value;
        r.cmp = Cmp::Ge;
        r.threshold = config.cluster.maxPending;
        r.holdFor = 2 * units::MS;
        r.severity = Severity::Warn;
        rules.push_back(r);
    }
    // Rejects persisting while retention GC runs: the steady state
    // leaks work instead of absorbing it.
    {
        HealthRule r;
        r.id = "gc_reject";
        r.metric = "cluster.segmentsRejected";
        r.signal = Signal::Rate;
        r.cmp = Cmp::Gt;
        r.threshold = 0;
        r.holdFor = 2 * units::MS;
        r.severity = Severity::Warn;
        rules.push_back(r);
    }
    if (config.repair.enabled) {
        // Repair debt outstanding longer than a few engine wakeups
        // should be needed to start paying it down.
        HealthRule r;
        r.id = "repair_debt";
        r.metric = "repair.oldestDebtAgeNs";
        r.signal = Signal::Value;
        r.cmp = Cmp::Gt;
        r.threshold = 5 * config.repair.tickInterval;
        r.holdFor = 0;
        r.severity = Severity::Critical;
        rules.push_back(r);
    }
    if (config.repair.enabled && config.repair.scrubInterval != 0) {
        // Integrity scrubbing finding corrupted copies — silent
        // data loss in progress.
        HealthRule r;
        r.id = "scrub_rot";
        r.metric = "repair.scrubCorruptions";
        r.signal = Signal::Rate;
        r.cmp = Cmp::Gt;
        r.threshold = 0;
        r.holdFor = 0;
        r.severity = Severity::Critical;
        rules.push_back(r);
    }
    return rules;
}

namespace {

/** Integer-jittered think time: uniform in [gap/2, 3*gap/2). */
Tick
thinkTime(Rng &rng, Tick mean_gap)
{
    return mean_gap / 2 + rng.below(mean_gap);
}

} // namespace

Tick
FleetScheduler::step(Actor &a)
{
    const DevicePlan &plan = plans_[a.id];
    const bool benign_done = a.benignOps >= config_.opsPerDevice;
    FleetAttacker *attacker = a.attacker.get();

    // Benign traffic exhausted with the attack still ahead: jump to
    // the infection time instead of spinning.
    if (attacker && !attacker->begun() && benign_done &&
        a.clock.now() < plan.attackStart) {
        a.clock.advanceTo(plan.attackStart);
    }

    if (attacker && !attacker->begun() &&
        a.clock.now() >= plan.attackStart) {
        attacker->begin(*a.dev, *a.victim, a.clock.now());
    }

    if (attacker && attacker->begun() && !attacker->done()) {
        attacker->step(*a.dev, a.clock);
    } else if (!benign_done) {
        a.issueBenign();
    } else {
        return 0; // everything this device had to do is done
    }

    a.steps++;
    // Periodic offload tick: benign read phases don't pass through
    // the write path's opportunistic pump, so give the engine a
    // chance to seal full segments between host commands.
    if ((a.steps & 7) == 0)
        a.dev->pumpOffload();

    // Suspicion-aware retention: the first detector alarm flags the
    // device's stream with an eviction hold, so capacity pressure
    // (a shard-flood) cannot expire the victim's evidence.
    if (config_.suspicionHolds && !a.holdFlagged) {
        for (const auto &det : a.detectors) {
            if (!det->alarms().empty()) {
                cluster_->setEvictionHold(a.id, true);
                a.holdFlagged = true;
                if (trace_ != nullptr) {
                    trace_->instant("fleet", "suspicion-hold",
                                    obs::kTrackFleet, 0,
                                    a.clock.now(),
                                    {{"device", a.id}});
                }
                break;
            }
        }
    }

    return a.clock.now() + thinkTime(a.rng, config_.meanOpGap);
}

FleetReport
FleetScheduler::run()
{
    panicIf(ran_, "FleetScheduler: run() twice");
    ran_ = true;

    using Event = std::pair<Tick, std::uint32_t>;
    std::priority_queue<Event, std::vector<Event>, std::greater<>>
        queue;
    for (auto &actor : actors_) {
        queue.push({actor->clock.now() +
                        thinkTime(actor->rng, config_.meanOpGap),
                    actor->id});
    }

    // Membership and bit-rot events ride the same spine with ids
    // past the device range, so the (tick, id) tie-break sorts them
    // after every device wakeup at the same tick — deterministically.
    const std::uint32_t membership_base = config_.devices;
    const std::uint32_t bitrot_base =
        membership_base +
        static_cast<std::uint32_t>(config_.membership.size());
    const std::uint32_t engine_id =
        bitrot_base + static_cast<std::uint32_t>(config_.bitRot.size());
    for (std::uint32_t i = 0; i < config_.membership.size(); i++)
        queue.push({config_.membership[i].at, membership_base + i});
    for (std::uint32_t i = 0; i < config_.bitRot.size(); i++)
        queue.push({config_.bitRot[i].at, bitrot_base + i});

    // The repair engine is a periodic actor on the same spine: its
    // copies pass through the shard ingest queues, so repair traffic
    // and foreground quorum writes contend deterministically.
    std::uint32_t active = static_cast<std::uint32_t>(actors_.size());
    if (engine_)
        queue.push({config_.repair.tickInterval, engine_id});

    // The health sampler is the last actor id on the spine: at a
    // shared tick it observes *after* every device op, membership
    // event and repair wakeup — one consistent cut per interval.
    const std::uint32_t sampler_id = engine_id + 1;
    if (sampler_)
        queue.push({config_.health.interval, sampler_id});

    while (!queue.empty()) {
        const auto [at, id] = queue.top();
        queue.pop();
        if (id == sampler_id && sampler_) {
            sampler_->sample(at);
            monitor_->evaluate(at);
            if (active > 0)
                queue.push({at + config_.health.interval, sampler_id});
            continue;
        }
        if (id == engine_id && engine_) {
            engine_->tick(at);
            if (active > 0)
                queue.push({at + config_.repair.tickInterval,
                            engine_id});
            continue;
        }
        if (id >= bitrot_base && id < engine_id) {
            const BitRotEvent &e = config_.bitRot[id - bitrot_base];
            if (trace_ != nullptr) {
                trace_->instant("fleet", "bit-rot", obs::kTrackFleet,
                                0, at, {{"device", e.device}});
            }
            applyBitRot(e);
            continue;
        }
        if (id >= membership_base) {
            const MembershipEvent &e =
                config_.membership[id - membership_base];
            remote::ShardId shard = e.shard;
            const char *name = "crash-shard";
            switch (e.kind) {
              case MembershipKind::CrashShard:
                cluster_->crashShard(e.shard);
                break;
              case MembershipKind::JoinShard:
                shard = cluster_->joinShard(at);
                name = "join-shard";
                break;
              case MembershipKind::LeaveShard:
                cluster_->leaveShard(e.shard, at);
                name = "leave-shard";
                break;
            }
            if (trace_ != nullptr) {
                trace_->instant("fleet", name, obs::kTrackFleet, 0,
                                at, {{"shard", shard}});
            }
            continue;
        }
        Actor &a = *actors_[id];
        a.clock.advanceTo(at);
        const Tick next = step(a);
        if (next == 0)
            active--;
        else
            queue.push({next, id});
    }

    // Ship every straggler segment (in device-id order — part of the
    // determinism contract).
    for (auto &actor : actors_)
        actor->dev->drainOffload();

    // With repair enabled the campaign does not end until the
    // cluster converged: the queue drains, quarantined copies are
    // rebuilt, and one full scrub pass comes back clean — all in
    // virtual time, after the last device op.
    if (engine_) {
        Tick end = 0;
        for (const auto &actor : actors_)
            end = std::max(end, actor->clock.now());
        repairConvergedAt_ = engine_->drainAll(end);
    }

    // One final sample after the drains: the post-convergence state
    // is what clears a raised repair_debt alert (the drain runs in
    // virtual time with no sampler wakeups in between).
    if (sampler_) {
        Tick end = 0;
        for (const auto &actor : actors_)
            end = std::max(end, actor->clock.now());
        Tick final_at = std::max(end, repairConvergedAt_);
        if (final_at <= sampler_->lastSampleAt())
            final_at = sampler_->lastSampleAt() + 1;
        sampler_->sample(final_at);
        monitor_->evaluate(final_at);
    }

    return aggregate();
}

void
FleetScheduler::applyBitRot(const BitRotEvent &event)
{
    // Deterministic target pick: the replicaIdx-th live replica-set
    // member whose copy currently stores segments. A stream with no
    // stored copy anywhere makes the fault a no-op.
    std::vector<remote::ShardId> holders;
    for (const remote::ShardId s :
         cluster_->replicaSetOf(event.device)) {
        if (cluster_->shardAlive(s) &&
            cluster_->shardStore(s).hasStream(event.device) &&
            !cluster_->shardStore(s)
                 .streamSegments(event.device)
                 .empty()) {
            holders.push_back(s);
        }
    }
    if (holders.empty())
        return;
    const remote::ShardId shard =
        holders[event.replicaIdx % holders.size()];
    remote::BackupStore &store = cluster_->mutableShardStore(shard);
    const std::uint64_t count =
        store.streamSegments(event.device).size();
    const std::uint64_t k =
        event.segmentIdx < count ? event.segmentIdx : count - 1;
    store.injectBitRot(event.device, k, /*first_byte=*/7,
                       /*byte_count=*/5);
}

forensics::GroundTruth
FleetScheduler::groundTruth() const
{
    forensics::GroundTruth truth;
    truth.known = true;
    truth.scenario = scenarioName(config_.campaign.scenario);

    // Infected devices by *actual* attack begin time (the plan's
    // attackStart is when the malware was armed; the evidence can
    // only ever see the first operation it issued).
    std::vector<std::pair<Tick, remote::DeviceId>> infected;
    for (const auto &actor : actors_) {
        const FleetAttacker *attacker = actor->attacker.get();
        if (attacker && attacker->begun())
            infected.push_back(
                {attacker->report().startedAt, actor->id});
    }
    std::sort(infected.begin(), infected.end());
    truth.anyInfected = !infected.empty();
    for (const auto &[at, id] : infected) {
        (void)at;
        truth.infectionOrder.push_back(id);
    }
    if (truth.anyInfected)
        truth.patientZero = truth.infectionOrder.front();
    return truth;
}

forensics::ForensicsReport
FleetScheduler::runForensics(const forensics::ForensicsConfig &config)
{
    panicIf(!ran_, "FleetScheduler: runForensics() before run()");
    if (!scanner_) {
        scanner_ =
            std::make_unique<forensics::EvidenceScanner>(*cluster_);
    }
    forensics::ForensicsReport report =
        forensics::analyzeCluster(*scanner_, config, groundTruth());

    // Execute the plan: restore every compromised (and still
    // trustworthy) device to its recommended recovery point from
    // the shard holding its stream. Device-id order — part of the
    // determinism contract.
    for (const forensics::DeviceFinding &f :
         report.correlation.findings) {
        if (!f.finding.detected || !f.chainIntact)
            continue;
        Actor &a = *actors_[static_cast<std::uint32_t>(f.device)];

        forensics::RecoveryOutcome outcome;
        outcome.device = f.device;
        outcome.recoverySeq = f.finding.recommendedRecoverySeq;
        outcome.victimIntactBefore =
            a.victim ? a.victim->intactFraction(*a.dev) : 1.0;

        // Replica-aware restore: read from whichever live replica's
        // copy of the stream chain-verifies (a crashed primary is
        // invisible here — the history comes off a survivor).
        core::DeviceHistory history(*a.dev, *cluster_, f.device);
        outcome.restoredFromShard = history.sourceShard();
        core::RecoveryEngine engine(history);
        const core::RecoveryReport rec =
            engine.recoverToLogSeq(outcome.recoverySeq);

        outcome.pagesRestored = rec.pagesRestored;
        outcome.restoredFromRemote = rec.restoredFromRemote;
        outcome.unresolved = rec.unresolved;
        outcome.beforePrunedHorizon = rec.beforePrunedHorizon;
        outcome.victimIntactAfter =
            a.victim ? a.victim->intactFraction(*a.dev) : 1.0;
        report.recovery.push_back(outcome);
    }
    report.recoveryExecuted = true;
    return report;
}

FleetReport
FleetScheduler::aggregate()
{
    FleetReport rep;
    rep.devices = config_.devices;
    rep.shards = cluster_->shardCount();
    rep.replication = config_.replication;
    rep.liveShards = cluster_->liveShardCount();
    rep.scenario = scenarioName(config_.campaign.scenario);
    rep.seed = config_.seed;
    rep.opsPerDevice = config_.opsPerDevice;

    for (auto &actor : actors_) {
        Actor &a = *actor;
        DeviceReport d;
        d.device = a.id;
        d.shard = cluster_->shardOfDevice(a.id);
        d.replicas = cluster_->replicaSetOf(a.id);
        const remote::StreamHealth health =
            cluster_->streamHealth(a.id);
        d.replicasLive = health.live;
        d.quarantinedCopies = health.quarantined;
        d.role = roleName(plans_[a.id].role);
        d.attackStart = plans_[a.id].role == DeviceRole::Benign
            ? 0
            : plans_[a.id].attackStart;
        if (a.attacker && a.attacker->begun())
            d.attack = a.attacker->report();
        else
            d.attack.attack = "benign";
        d.victimIntact =
            a.victim ? a.victim->intactFraction(*a.dev) : 1.0;

        Tick first_at = 0;
        for (const auto &det : a.detectors) {
            for (const detect::Alarm &alarm : det->alarms()) {
                d.alarms++;
                if (d.firstAlarmDetector.empty() ||
                    alarm.raisedAt < first_at) {
                    first_at = alarm.raisedAt;
                    d.firstAlarmDetector = alarm.detector;
                }
            }
        }
        d.firstAlarmAt = first_at;
        d.benignOps = a.benignOps;
        d.rssd = a.dev->stats();
        d.offload = a.dev->offload().stats();
        d.transport = a.dev->transport().stats();
        d.finishedAt = a.clock.now();
        rep.sealLatency.merge(a.dev->offload().sealLatency());

        rep.totalPagesEncrypted += d.attack.pagesEncrypted;
        rep.totalPagesTrimmed += d.attack.pagesTrimmed;
        rep.totalJunkPages += d.attack.junkPagesWritten;
        rep.totalAlarms += d.alarms;
        rep.makespan = std::max(rep.makespan, d.finishedAt);
        rep.deviceReports.push_back(std::move(d));
    }

    for (remote::ShardId s = 0; s < cluster_->shardCount(); s++) {
        const remote::ShardIngestStats &st = cluster_->shardStats(s);
        const remote::BackupStore &store = cluster_->shardStore(s);
        ShardReport sr;
        sr.shard = s;
        sr.status =
            remote::shardStatusName(cluster_->shardStatus(s));
        sr.devices = cluster_->shardDevices(s).size();
        sr.segmentsAccepted = st.segmentsAccepted;
        sr.segmentsRejected = st.segmentsRejected;
        sr.duplicates = store.stats().duplicateSegments;
        sr.rejectedBytes = st.rejectedBytes;
        sr.batches = st.batches;
        sr.meanBatchSegments = st.meanBatchSegments();
        sr.maxBatchFill = st.maxBatchFill;
        sr.backpressureStalls = st.backpressureStalls;
        if (st.backlog.count() > 0) {
            sr.backlogP50 = st.backlog.percentileNs(50);
            sr.backlogP99 = st.backlog.percentileNs(99);
        }
        sr.usedBytes = store.usedBytes();
        sr.capacityBytes = store.capacityBytes();
        sr.segmentsPruned = store.stats().segmentsPruned;
        sr.bytesPruned = store.stats().bytesPruned;
        sr.heldStreams = store.heldStreams();
        sr.quarantined = cluster_->shardAlive(s)
            ? store.quarantinedStreams()
            : 0;
        // A crashed shard is fail-stop: its store is gone from the
        // ring and never read again, so it neither vouches for nor
        // taints the fleet's chain verdict.
        sr.chainOk = cluster_->shardAlive(s)
            ? store.verifyFullChain()
            : true;

        rep.queueWaitLatency.merge(st.queueWait);
        rep.offloadAckLatency.merge(st.backlog);

        rep.totalSegments += sr.segmentsAccepted;
        rep.totalBytesStored += sr.usedBytes;
        rep.totalBackpressureStalls += sr.backpressureStalls;
        rep.totalSegmentsPruned += sr.segmentsPruned;
        rep.totalBytesPruned += sr.bytesPruned;
        rep.allChainsOk = rep.allChainsOk && sr.chainOk;
        rep.shardReports.push_back(sr);
    }
    rep.replicationStats = cluster_->replicationStats();
    rep.quorumWaitLatency.merge(cluster_->quorumWait());

    rep.repairEnabled = config_.repair.enabled;
    if (engine_) {
        rep.repairStats = engine_->stats();
        rep.repairCopyLatency.merge(engine_->copyLatency());
    }
    rep.degradedAtEnd = cluster_->degradedStreams().size();
    rep.quarantinedAtEnd = cluster_->quarantinedCopies();
    rep.repairConvergedAt = repairConvergedAt_;

    rep.health.enabled = sampler_ != nullptr;
    rep.health.interval = config_.health.interval;
    if (sampler_) {
        rep.health.samples = sampler_->samples();
        rep.health.lastSampleAt = sampler_->lastSampleAt();
    }
    if (monitor_) {
        const std::vector<obs::HealthRule> &rules = monitor_->rules();
        rep.health.alertsRaised = monitor_->alerts().size();
        rep.health.alertsOpen = monitor_->openCount();
        rep.health.worstSeverity =
            obs::severityName(monitor_->worstRaised());
        for (std::size_t i = 0; i < rules.size(); i++) {
            HealthRuleReport rr;
            rr.id = rules[i].id;
            rr.metric = rules[i].metric;
            rr.severity = obs::severityName(rules[i].severity);
            rr.raised = monitor_->raisedCount(i);
            for (const obs::HealthAlert &alert : monitor_->alerts()) {
                if (alert.rule == i && alert.open)
                    rr.open = true;
            }
            rep.health.rules.push_back(std::move(rr));
        }
        for (const obs::HealthAlert &alert : monitor_->alerts()) {
            HealthAlertReport ar;
            ar.rule = rules[alert.rule].id;
            ar.severity =
                obs::severityName(rules[alert.rule].severity);
            ar.raisedAt = alert.raisedAt;
            ar.clearedAt = alert.open ? 0 : alert.clearedAt;
            ar.open = alert.open;
            ar.observed = alert.observed;
            rep.health.alerts.push_back(std::move(ar));
        }
    }
    return rep;
}

} // namespace rssd::fleet
