/**
 * @file
 * Fleet attack campaigns: which devices are infected, when each one
 * turns, and what the malware does once it is active.
 *
 * The catalog composes the per-device models from attack/ into
 * fleet-level scenarios:
 *  - *outbreak*: every infected device starts encrypting at the same
 *    instant (a worm detonating on a schedule).
 *  - *staggered*: infection spreads laterally; device i turns
 *    attackStart + i * stagger after the first.
 *  - *shard-flood*: the fleet variant of the paper's GC attack. The
 *    devices that consistent-hash onto the cluster's most-loaded
 *    shard encrypt their victims and then flood junk writes, driving
 *    that one shard's ingest queue into backpressure while the other
 *    devices run the classic encryptor — a cross-device campaign
 *    against shared remote capacity rather than local GC.
 *  - *benign*: no infection (the fleet baseline).
 *
 * A campaign is a pure, deterministic function of (scenario, fleet
 * size, cluster placement) — the scheduler replays it identically
 * for a fixed seed.
 */

#ifndef RSSD_FLEET_CAMPAIGN_HH
#define RSSD_FLEET_CAMPAIGN_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "attack/ransomware.hh"
#include "attack/victim.hh"
#include "compress/datagen.hh"
#include "remote/backup_cluster.hh"

namespace rssd::fleet {

enum class Scenario : std::uint8_t {
    Benign,
    Outbreak,
    Staggered,
    ShardFlood,
};

const char *scenarioName(Scenario s);

/** Parse a CLI scenario name; fatal() on an unknown one. */
Scenario scenarioByName(const std::string &name);

/** What one device's malware does. */
enum class DeviceRole : std::uint8_t {
    Benign,    ///< not infected
    Encryptor, ///< classic read->encrypt->overwrite
    Flooder,   ///< encrypt, then junk-flood (shard-flood campaign)
};

const char *roleName(DeviceRole role);

/** Campaign knobs. */
struct CampaignConfig
{
    Scenario scenario = Scenario::Outbreak;

    /** When the first device turns. */
    Tick attackStart = 50 * units::MS;

    /** Staggered: delay between successive devices turning. */
    Tick stagger = 100 * units::MS;

    /** Victim pages per infected device. */
    std::uint32_t victimPages = 32;

    /** Shard-flood: junk pages each flooder writes after encrypting. */
    std::uint64_t floodPages = 2048;

    /**
     * Shard-flood: LBA span used for flooding (device fraction). A
     * tight span makes the flood overwrite itself, so nearly every
     * junk page enters the retention stream and lands on the hot
     * shard — that is the attack.
     */
    double floodSpanFraction = 0.125;
};

/** One device's marching orders. */
struct DevicePlan
{
    DeviceRole role = DeviceRole::Benign;
    Tick attackStart = 0;
};

/**
 * Resolve a campaign against a fleet of @p devices whose streams are
 * already attached to @p cluster (shard-flood targets the placement).
 */
std::vector<DevicePlan> planCampaign(const CampaignConfig &config,
                                     std::uint32_t devices,
                                     const remote::BackupCluster &cluster);

/**
 * A Ransomware the fleet scheduler can advance one operation at a
 * time, so N attacks interleave in virtual time. Inherits the real
 * key-derivation/encryption machinery from attack::Ransomware; run()
 * still works standalone (begin + step to completion).
 */
class FleetAttacker : public attack::Ransomware
{
  public:
    struct Params
    {
        DeviceRole role = DeviceRole::Encryptor;
        std::uint64_t floodPages = 0;
        double floodSpanFraction = 0.5;
    };

    FleetAttacker(const Params &params,
                  const attack::AttackConfig &config);

    const char *name() const override;

    attack::AttackReport run(nvme::BlockDevice &device,
                             VirtualClock &clock,
                             const attack::VictimDataset &victim)
        override;

    // -- Stepwise interface (fleet scheduler) -------------------------

    /** Arm the attack against @p device / @p victim at time @p now. */
    void begin(nvme::BlockDevice &device,
               const attack::VictimDataset &victim, Tick now);

    bool begun() const { return begun_; }

    /** True once every victim page and flood page has been issued. */
    bool done() const;

    /** Issue the next attack operation at the device clock's time. */
    void step(nvme::BlockDevice &device, VirtualClock &clock);

    const attack::AttackReport &report() const { return report_; }

  private:
    Params params_;
    const attack::VictimDataset *victim_ = nullptr;
    std::unique_ptr<compress::DataGenerator> junk_;
    attack::AttackReport report_;
    std::uint64_t encIdx_ = 0;
    std::uint64_t floodIdx_ = 0;
    std::uint64_t floodSpan_ = 1;
    attack::Lpa floodBase_ = 0;
    bool begun_ = false;
};

} // namespace rssd::fleet

#endif // RSSD_FLEET_CAMPAIGN_HH
