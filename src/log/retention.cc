#include "log/retention.hh"

#include "sim/logging.hh"

namespace rssd::log {

void
RetentionIndex::add(const RetainedPage &page)
{
    const auto [it, inserted] = bySeq_.emplace(page.dataSeq, page);
    panicIf(!inserted, "RetentionIndex: duplicate dataSeq");
    const auto [pit, pinserted] = byPpa_.emplace(page.ppa, page.dataSeq);
    panicIf(!pinserted, "RetentionIndex: duplicate ppa");
    (void)it;
    (void)pit;
    totalAdded_++;
}

void
RetentionIndex::onRelocated(Ppa from, Ppa to)
{
    const auto it = byPpa_.find(from);
    panicIf(it == byPpa_.end(),
            "RetentionIndex: relocation of untracked ppa");
    const std::uint64_t seq = it->second;
    byPpa_.erase(it);
    const auto [nit, inserted] = byPpa_.emplace(to, seq);
    panicIf(!inserted, "RetentionIndex: relocation target collision");
    (void)nit;
    bySeq_.at(seq).ppa = to;
}

std::vector<RetainedPage>
RetentionIndex::takeOldest(std::size_t max_pages)
{
    // Popping bySeq_.begin() from a std::map is O(log n) per page —
    // there is no vector-style front-erase shuffle here, so draining
    // k pages costs O(k log n), not O(k·n). Audited for the offload
    // hot path; keep this a node-based ordered container.
    std::vector<RetainedPage> out;
    out.reserve(std::min(max_pages, bySeq_.size()));
    while (out.size() < max_pages && !bySeq_.empty()) {
        const auto it = bySeq_.begin();
        out.push_back(std::move(it->second));
        byPpa_.erase(out.back().ppa);
        bySeq_.erase(it);
    }
    return out;
}

std::optional<RetainedPage>
RetentionIndex::findByDataSeq(std::uint64_t seq) const
{
    const auto it = bySeq_.find(seq);
    if (it == bySeq_.end())
        return std::nullopt;
    return it->second;
}

bool
RetentionIndex::tracksPpa(Ppa ppa) const
{
    return byPpa_.count(ppa) > 0;
}

Tick
RetentionIndex::oldestAge(Tick now) const
{
    if (bySeq_.empty())
        return 0;
    const Tick t = bySeq_.begin()->second.invalidatedAt;
    return now > t ? now - t : 0;
}

} // namespace rssd::log
