/**
 * @file
 * The retention index: the set of invalidated-but-held flash pages
 * awaiting offload, ordered by data version (time order).
 *
 * RSSD's zero-data-loss guarantee rests on this queue: a page enters
 * when the FTL invalidates it (overwrite or trim), may be physically
 * relocated by GC without losing its identity, and leaves only when
 * its sealed segment has been acknowledged by the remote store —
 * at which point the FTL hold is released.
 */

#ifndef RSSD_LOG_RETENTION_HH
#define RSSD_LOG_RETENTION_HH

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "flash/geometry.hh"
#include "sim/units.hh"

namespace rssd::log {

using flash::Lpa;
using flash::Ppa;

/** Why the page was invalidated (mirrors ftl::InvalidateCause). */
enum class RetainCause : std::uint8_t {
    Overwrite,
    Trim,
};

/** One retained stale page. */
struct RetainedPage
{
    std::uint64_t dataSeq = 0; ///< version id (FTL OOB seq)
    Lpa lpa = 0;
    Ppa ppa = 0;               ///< current physical location
    Tick writtenAt = 0;        ///< original program time
    Tick invalidatedAt = 0;
    RetainCause cause = RetainCause::Overwrite;
};

/**
 * Time-ordered index of retained pages. Keyed by dataSeq (strictly
 * increasing with program order), with a reverse PPA map so GC
 * relocations can be tracked.
 */
class RetentionIndex
{
  public:
    /** Register a newly retained page. */
    void add(const RetainedPage &page);

    /** GC moved a retained page; keep the index consistent. */
    void onRelocated(Ppa from, Ppa to);

    /**
     * Pop up to @p max_pages oldest retained pages (for segment
     * sealing). Pages leave the index; the caller owns releasing the
     * FTL holds once the segment is acked.
     */
    std::vector<RetainedPage> takeOldest(std::size_t max_pages);

    /** Look up a still-local retained page by its version id. */
    std::optional<RetainedPage> findByDataSeq(std::uint64_t seq) const;

    /** Whether @p ppa is tracked here. */
    bool tracksPpa(Ppa ppa) const;

    std::size_t size() const { return bySeq_.size(); }
    bool empty() const { return bySeq_.empty(); }

    /** Age of the oldest pending page at time @p now (0 if empty). */
    Tick oldestAge(Tick now) const;

    /** Total pages ever added (for retention-rate accounting). */
    std::uint64_t totalAdded() const { return totalAdded_; }

  private:
    std::map<std::uint64_t, RetainedPage> bySeq_;
    std::unordered_map<Ppa, std::uint64_t> byPpa_;
    std::uint64_t totalAdded_ = 0;
};

} // namespace rssd::log

#endif // RSSD_LOG_RETENTION_HH
