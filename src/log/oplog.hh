/**
 * @file
 * The hardware-assisted operation log (paper §3, "Trusted post-attack
 * analysis").
 *
 * Every host-visible mutation (write, trim) appends one entry, in the
 * order the firmware executed it. Entries form a SHA-256 hash chain:
 * digest_i = H(serialize(entry_i) || digest_{i-1}), so any tampering,
 * reordering or splicing of the history is detectable — this is the
 * "trusted evidence chain" the post-attack analyzer verifies.
 *
 * Two sequence domains exist on purpose:
 *  - logSeq: position in the operation log (writes *and* trims);
 *  - dataSeq: version number of page data, assigned by the FTL at
 *    program time and preserved across GC relocations.
 * A Write entry records the dataSeq it created and the dataSeq it
 * superseded (prevDataSeq), forming per-LBA backtracking pointers.
 */

#ifndef RSSD_LOG_OPLOG_HH
#define RSSD_LOG_OPLOG_HH

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/sha256.hh"
#include "flash/geometry.hh"
#include "sim/units.hh"

namespace rssd::log {

using flash::Lpa;

/** Sentinel: no predecessor version. */
constexpr std::uint64_t kNoDataSeq = ~0ull;

/** Logged operation kinds. */
enum class OpKind : std::uint8_t {
    Write, ///< host write creating a new data version
    Trim,  ///< host trim dropping the mapping (data retained)
    Read,  ///< host read (optional, RssdConfig::logReads) — records
           ///< which data version was observed, for forensics
};

const char *opKindName(OpKind k);

/** One operation-log record. */
struct LogEntry
{
    std::uint64_t logSeq = 0;
    OpKind op = OpKind::Write;
    Lpa lpa = 0;
    std::uint64_t dataSeq = kNoDataSeq;     ///< version created (Write)
    std::uint64_t prevDataSeq = kNoDataSeq; ///< version superseded
    Tick timestamp = 0;
    float entropy = 0.0f; ///< bits/byte of the written content (Write)
    crypto::Digest chain{}; ///< hash-chain digest through this entry

    /** Fixed-size wire encoding (without the chain digest). */
    static constexpr std::size_t kBodySize = 45;
    std::array<std::uint8_t, kBodySize> serializeBody() const;
};

/**
 * Append-only hash-chained log. Supports truncation of a verified
 * prefix after that prefix has been offloaded into sealed segments
 * (the device keeps only the un-offloaded tail locally, as in the
 * paper).
 */
class OperationLog
{
  public:
    OperationLog();

    /** Append a record; fills logSeq and chain. @return the entry. */
    const LogEntry &append(OpKind op, Lpa lpa, std::uint64_t data_seq,
                           std::uint64_t prev_data_seq, Tick timestamp,
                           float entropy);

    /** Number of entries currently held (after truncation). */
    std::size_t size() const { return entries_.size() - headIdx_; }

    /** Total entries ever appended. */
    std::uint64_t totalAppended() const { return nextSeq_; }

    /** logSeq of the first locally held entry. */
    std::uint64_t firstHeldSeq() const { return firstSeq_; }

    /** Entry by logSeq; must be locally held. */
    const LogEntry &at(std::uint64_t log_seq) const;

    /** Whether @p log_seq is still held locally. */
    bool holds(std::uint64_t log_seq) const;

    /**
     * All locally held entries, oldest first, as a view over the
     * log's contiguous storage. The offload engine seals directly
     * from this span without copying the tail. Invalidated by
     * append() and truncateBefore().
     */
    std::span<const LogEntry>
    entries() const
    {
        return {entries_.data() + headIdx_, entries_.size() - headIdx_};
    }

    /** Digest of the newest entry (genesis digest when empty). */
    const crypto::Digest &headDigest() const;

    /** Digest immediately preceding the first locally held entry. */
    const crypto::Digest &anchorDigest() const { return anchor_; }

    /** The well-known genesis digest that anchors every chain. */
    static crypto::Digest genesisDigest();

    /**
     * Drop entries with logSeq < @p upto (they live in acked remote
     * segments now). The chain digest preceding the new first entry
     * is remembered so verification still works.
     */
    void truncateBefore(std::uint64_t upto);

    /**
     * Verify the chain of the locally held entries.
     * @return true iff every digest re-derives correctly from the
     * anchor.
     */
    bool verifyHeldChain() const;

    /**
     * Verify an arbitrary run of entries against a starting anchor
     * digest (used for remote segments and spliced histories).
     */
    static bool verifyRun(const crypto::Digest &anchor,
                          const std::vector<LogEntry> &run);

    /** Recompute what an entry's chain digest must be. */
    static crypto::Digest chainDigest(const crypto::Digest &prev,
                                      const LogEntry &entry);

  private:
    /**
     * Contiguous storage with a logically popped prefix: truncation
     * advances headIdx_ instead of erasing, and compaction runs only
     * when the dead prefix dominates, keeping truncateBefore
     * amortized O(1) while entries() stays a flat span.
     */
    std::vector<LogEntry> entries_;
    std::size_t headIdx_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t firstSeq_ = 0;
    crypto::Digest anchor_;  ///< digest just before the first held entry
    crypto::Digest head_;    ///< digest of the last held entry
};

} // namespace rssd::log

#endif // RSSD_LOG_OPLOG_HH
