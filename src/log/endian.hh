/**
 * @file
 * Little-endian field loads/stores for the log wire formats.
 *
 * One definition shared by the oplog entry body and the segment
 * serializer/reader, so a portability fix (or a wire-format change)
 * cannot silently fork the encoding between them. Single memcpy on
 * little-endian hosts; byte-swapped on big-endian ones.
 */

#ifndef RSSD_LOG_ENDIAN_HH
#define RSSD_LOG_ENDIAN_HH

#include <bit>
#include <cstdint>
#include <cstring>

namespace rssd::log {

inline void
storeLe32(std::uint8_t *p, std::uint32_t v)
{
    if constexpr (std::endian::native != std::endian::little)
        v = __builtin_bswap32(v);
    std::memcpy(p, &v, 4);
}

inline void
storeLe64(std::uint8_t *p, std::uint64_t v)
{
    if constexpr (std::endian::native != std::endian::little)
        v = __builtin_bswap64(v);
    std::memcpy(p, &v, 8);
}

inline std::uint32_t
loadLe32(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    if constexpr (std::endian::native != std::endian::little)
        v = __builtin_bswap32(v);
    return v;
}

inline std::uint64_t
loadLe64(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    if constexpr (std::endian::native != std::endian::little)
        v = __builtin_bswap64(v);
    return v;
}

} // namespace rssd::log

#endif // RSSD_LOG_ENDIAN_HH
