/**
 * @file
 * Incremental verification of a sealed-segment chain — the one
 * implementation of the trust check everything else builds on.
 *
 * A verifier consumes one stream's sealed segments in storage order
 * and checks, per segment:
 *   - HMAC authenticity under the stream's codec,
 *   - segment ordering (prevId must name the last verified segment),
 *   - chain-anchor continuity (chainAnchor extends the previous
 *     segment's chainTail),
 *   - the per-entry hash chain inside the segment, and that the last
 *     entry's digest equals the advertised chainTail.
 *
 * The verifier is *resumable*: its state after segment k is exactly
 * what is needed to verify segment k+1, so a caller that keeps the
 * verifier alive pays only for new segments when more evidence
 * arrives — the O(new) re-analysis property the cluster-side
 * forensics subsystem is built on. BackupStore::verifyFullChain()
 * and the forensics evidence scanner share this class; there is no
 * second copy of the chain rules to drift.
 */

#ifndef RSSD_LOG_CHAIN_VERIFY_HH
#define RSSD_LOG_CHAIN_VERIFY_HH

#include <cstdint>

#include "log/segment.hh"

namespace rssd::log {

/** Why the most recent verifyNext() failed. */
enum class ChainFault : std::uint8_t {
    None,
    BadAuthentication, ///< HMAC or CRC mismatch
    BrokenOrder,       ///< prevId does not name the last segment
    BrokenAnchor,      ///< chainAnchor does not extend the last tail
    BrokenEntryChain,  ///< per-entry hash chain does not re-derive
};

const char *chainFaultName(ChainFault f);

class SegmentChainVerifier
{
  public:
    /**
     * Verify the next sealed segment of the stream. On success the
     * verifier advances (and @p opened_out, if non-null, receives
     * the decrypted segment); on failure the verifier state is
     * unchanged and fault() says why. Once a segment fails, the
     * suffix from that point is untrusted — callers typically stop.
     */
    bool verifyNext(const SealedSegment &sealed,
                    const SegmentCodec &codec,
                    Segment *opened_out = nullptr);

    /**
     * Re-anchor the verifier at a retention-GC prune horizon: after
     * this, the next segment must name @p record's last pruned
     * segment as its predecessor and extend the pruned chain's tail
     * digest. The record's signature is checked first (it is the
     * trusted substitute for the pruned prefix); a bad signature
     * sets fault() = BadAuthentication and leaves the verifier
     * unchanged. Valid both at the start of a stream (fresh
     * verifier over an already-pruned stream) and mid-stream (the
     * horizon advanced past an incremental scanner's cursor).
     */
    bool resumeFrom(const PruneRecord &record,
                    const SegmentCodec &codec);

    /** Segments verified so far. */
    std::uint64_t segmentsVerified() const { return count_; }

    /** Payload + header bytes verified so far. */
    std::uint64_t bytesVerified() const { return bytes_; }

    /** Log entries whose hash chain re-derived so far. */
    std::uint64_t entriesVerified() const { return entries_; }

    ChainFault fault() const { return fault_; }

    /** Chain digest the next segment's anchor must extend (only
     *  meaningful once segmentsVerified() > 0). */
    const crypto::Digest &chainTail() const { return tail_; }

  private:
    std::uint64_t expectPrev_ = kNoSegment;
    crypto::Digest tail_{};
    bool haveTail_ = false;
    std::uint64_t count_ = 0;
    std::uint64_t bytes_ = 0;
    std::uint64_t entries_ = 0;
    ChainFault fault_ = ChainFault::None;
};

} // namespace rssd::log

#endif // RSSD_LOG_CHAIN_VERIFY_HH
