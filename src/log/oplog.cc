#include "log/oplog.hh"

#include <cstring>

#include "log/endian.hh"
#include "sim/logging.hh"

namespace rssd::log {

const char *
opKindName(OpKind k)
{
    switch (k) {
      case OpKind::Write: return "WRITE";
      case OpKind::Trim: return "TRIM";
      case OpKind::Read: return "READ";
    }
    return "?";
}

std::array<std::uint8_t, LogEntry::kBodySize>
LogEntry::serializeBody() const
{
    std::array<std::uint8_t, kBodySize> out{};
    storeLe64(&out[0], logSeq);
    out[8] = static_cast<std::uint8_t>(op);
    storeLe64(&out[9], lpa);
    storeLe64(&out[17], dataSeq);
    storeLe64(&out[25], prevDataSeq);
    storeLe64(&out[33], timestamp);
    // Entropy is quantized to avoid float-format ambiguity in the
    // hashed body; the exact float travels beside the body in
    // segment serialization.
    const std::uint32_t q =
        static_cast<std::uint32_t>(entropy * 1000.0f);
    storeLe32(&out[41], q);
    return out;
}

OperationLog::OperationLog()
    : anchor_(genesisDigest()), head_(genesisDigest())
{
}

crypto::Digest
OperationLog::genesisDigest()
{
    static const char *tag = "rssd-oplog-genesis-v1";
    return crypto::Sha256::hash(tag, std::strlen(tag));
}

crypto::Digest
OperationLog::chainDigest(const crypto::Digest &prev,
                          const LogEntry &entry)
{
    crypto::Sha256 ctx;
    const auto body = entry.serializeBody();
    ctx.update(body.data(), body.size());
    ctx.update(prev.data(), prev.size());
    return ctx.finish();
}

const LogEntry &
OperationLog::append(OpKind op, Lpa lpa, std::uint64_t data_seq,
                     std::uint64_t prev_data_seq, Tick timestamp,
                     float entropy)
{
    LogEntry e;
    e.logSeq = nextSeq_++;
    e.op = op;
    e.lpa = lpa;
    e.dataSeq = data_seq;
    e.prevDataSeq = prev_data_seq;
    e.timestamp = timestamp;
    e.entropy = entropy;
    e.chain = chainDigest(head_, e);
    head_ = e.chain;
    entries_.push_back(e);
    return entries_.back();
}

const LogEntry &
OperationLog::at(std::uint64_t log_seq) const
{
    panicIf(!holds(log_seq), "OperationLog::at: entry not held");
    return entries_[headIdx_ + (log_seq - firstSeq_)];
}

bool
OperationLog::holds(std::uint64_t log_seq) const
{
    return log_seq >= firstSeq_ && log_seq < nextSeq_;
}

const crypto::Digest &
OperationLog::headDigest() const
{
    return head_;
}

void
OperationLog::truncateBefore(std::uint64_t upto)
{
    panicIf(upto > nextSeq_, "truncateBefore past the head");
    while (firstSeq_ < upto && headIdx_ < entries_.size()) {
        anchor_ = entries_[headIdx_].chain;
        headIdx_++;
        firstSeq_++;
    }
    // Reclaim the dead prefix only when it dominates the storage, so
    // repeated partial truncations stay amortized O(1).
    if (headIdx_ == entries_.size()) {
        entries_.clear();
        headIdx_ = 0;
    } else if (headIdx_ >= 1024 && headIdx_ * 2 >= entries_.size()) {
        entries_.erase(entries_.begin(),
                       entries_.begin() +
                           static_cast<std::ptrdiff_t>(headIdx_));
        headIdx_ = 0;
    }
}

bool
OperationLog::verifyHeldChain() const
{
    crypto::Digest prev = anchor_;
    for (const LogEntry &e : entries()) {
        if (chainDigest(prev, e) != e.chain)
            return false;
        prev = e.chain;
    }
    return prev == head_;
}

bool
OperationLog::verifyRun(const crypto::Digest &anchor,
                        const std::vector<LogEntry> &run)
{
    crypto::Digest prev = anchor;
    for (const LogEntry &e : run) {
        if (chainDigest(prev, e) != e.chain)
            return false;
        prev = e.chain;
    }
    return true;
}

} // namespace rssd::log
