#include "log/oplog.hh"

#include <cstring>

#include "sim/logging.hh"

namespace rssd::log {

namespace {

void
put64(std::uint8_t *p, std::uint64_t v)
{
    for (int i = 0; i < 8; i++)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void
put32(std::uint8_t *p, std::uint32_t v)
{
    for (int i = 0; i < 4; i++)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

} // namespace

const char *
opKindName(OpKind k)
{
    switch (k) {
      case OpKind::Write: return "WRITE";
      case OpKind::Trim: return "TRIM";
      case OpKind::Read: return "READ";
    }
    return "?";
}

std::array<std::uint8_t, LogEntry::kBodySize>
LogEntry::serializeBody() const
{
    std::array<std::uint8_t, kBodySize> out{};
    put64(&out[0], logSeq);
    out[8] = static_cast<std::uint8_t>(op);
    put64(&out[9], lpa);
    put64(&out[17], dataSeq);
    put64(&out[25], prevDataSeq);
    put64(&out[33], timestamp);
    // Entropy is quantized to avoid float-format ambiguity in the
    // hashed body; the exact float travels beside the body in
    // segment serialization.
    const std::uint32_t q =
        static_cast<std::uint32_t>(entropy * 1000.0f);
    put32(&out[41], q);
    return out;
}

OperationLog::OperationLog()
    : anchor_(genesisDigest()), head_(genesisDigest())
{
}

crypto::Digest
OperationLog::genesisDigest()
{
    static const char *tag = "rssd-oplog-genesis-v1";
    return crypto::Sha256::hash(tag, std::strlen(tag));
}

crypto::Digest
OperationLog::chainDigest(const crypto::Digest &prev,
                          const LogEntry &entry)
{
    crypto::Sha256 ctx;
    const auto body = entry.serializeBody();
    ctx.update(body.data(), body.size());
    ctx.update(prev.data(), prev.size());
    return ctx.finish();
}

const LogEntry &
OperationLog::append(OpKind op, Lpa lpa, std::uint64_t data_seq,
                     std::uint64_t prev_data_seq, Tick timestamp,
                     float entropy)
{
    LogEntry e;
    e.logSeq = nextSeq_++;
    e.op = op;
    e.lpa = lpa;
    e.dataSeq = data_seq;
    e.prevDataSeq = prev_data_seq;
    e.timestamp = timestamp;
    e.entropy = entropy;
    e.chain = chainDigest(head_, e);
    head_ = e.chain;
    entries_.push_back(e);
    return entries_.back();
}

const LogEntry &
OperationLog::at(std::uint64_t log_seq) const
{
    panicIf(!holds(log_seq), "OperationLog::at: entry not held");
    return entries_[log_seq - firstSeq_];
}

bool
OperationLog::holds(std::uint64_t log_seq) const
{
    return log_seq >= firstSeq_ && log_seq < nextSeq_;
}

const crypto::Digest &
OperationLog::headDigest() const
{
    return head_;
}

void
OperationLog::truncateBefore(std::uint64_t upto)
{
    panicIf(upto > nextSeq_, "truncateBefore past the head");
    while (firstSeq_ < upto && !entries_.empty()) {
        anchor_ = entries_.front().chain;
        entries_.pop_front();
        firstSeq_++;
    }
}

bool
OperationLog::verifyHeldChain() const
{
    crypto::Digest prev = anchor_;
    for (const LogEntry &e : entries_) {
        if (chainDigest(prev, e) != e.chain)
            return false;
        prev = e.chain;
    }
    return prev == head_;
}

bool
OperationLog::verifyRun(const crypto::Digest &anchor,
                        const std::vector<LogEntry> &run)
{
    crypto::Digest prev = anchor;
    for (const LogEntry &e : run) {
        if (chainDigest(prev, e) != e.chain)
            return false;
        prev = e.chain;
    }
    return true;
}

} // namespace rssd::log
