#include "log/chain_verify.hh"

namespace rssd::log {

const char *
chainFaultName(ChainFault f)
{
    switch (f) {
      case ChainFault::None: return "none";
      case ChainFault::BadAuthentication: return "bad-authentication";
      case ChainFault::BrokenOrder: return "broken-order";
      case ChainFault::BrokenAnchor: return "broken-anchor";
      case ChainFault::BrokenEntryChain: return "broken-entry-chain";
    }
    return "?";
}

bool
SegmentChainVerifier::resumeFrom(const PruneRecord &record,
                                 const SegmentCodec &codec)
{
    fault_ = ChainFault::None;
    if (!codec.verifyPrune(record)) {
        fault_ = ChainFault::BadAuthentication;
        return false;
    }
    expectPrev_ = record.upToId;
    tail_ = record.anchor;
    haveTail_ = true;
    return true;
}

bool
SegmentChainVerifier::verifyNext(const SealedSegment &sealed,
                                 const SegmentCodec &codec,
                                 Segment *opened_out)
{
    fault_ = ChainFault::None;

    if (!codec.verify(sealed)) {
        fault_ = ChainFault::BadAuthentication;
        return false;
    }
    if (sealed.prevId != expectPrev_) {
        fault_ = ChainFault::BrokenOrder;
        return false;
    }

    Segment seg = codec.open(sealed);
    if (haveTail_ && seg.chainAnchor != tail_) {
        fault_ = ChainFault::BrokenAnchor;
        return false;
    }
    // Per-entry hash chain within the segment, and the advertised
    // tail must be the digest of the last entry.
    if (!OperationLog::verifyRun(seg.chainAnchor, seg.entries)) {
        fault_ = ChainFault::BrokenEntryChain;
        return false;
    }
    if (!seg.entries.empty() &&
        seg.entries.back().chain != seg.chainTail) {
        fault_ = ChainFault::BrokenEntryChain;
        return false;
    }

    expectPrev_ = sealed.id;
    tail_ = seg.chainTail;
    haveTail_ = true;
    count_++;
    bytes_ += sealed.wireSize();
    entries_ += seg.entries.size();
    if (opened_out)
        *opened_out = std::move(seg);
    return true;
}

} // namespace rssd::log
