/**
 * @file
 * Offload segments: the unit in which RSSD ships retained pages and
 * operation-log entries to the remote store over NVMe-oE.
 *
 * A Segment is the plaintext bundle (log entries + retained page
 * contents, all in time order). SegmentCodec seals it for the wire:
 * serialize -> LZ compress -> ChaCha20 encrypt -> HMAC-SHA256, so
 * segments leave the device "in a compressed and encrypted format"
 * exactly as the paper describes. The remote store verifies the HMAC
 * and the segment chain (each segment names its predecessor and the
 * log-chain digest it extends) before accepting.
 */

#ifndef RSSD_LOG_SEGMENT_HH
#define RSSD_LOG_SEGMENT_HH

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/chacha20.hh"
#include "crypto/sha256.hh"
#include "log/oplog.hh"
#include "log/retention.hh"

namespace rssd::log {

using Bytes = std::vector<std::uint8_t>;

/** Sentinel segment id for "no predecessor". */
constexpr std::uint64_t kNoSegment = ~0ull;

/** A retained page's payload as carried in a segment. */
struct PageRecord
{
    Lpa lpa = 0;
    std::uint64_t dataSeq = 0;
    Tick writtenAt = 0;
    Tick invalidatedAt = 0;
    RetainCause cause = RetainCause::Overwrite;
    Bytes content; ///< may be empty in address-only experiments
};

/** Plaintext segment contents. */
struct Segment
{
    std::uint64_t id = 0;
    std::uint64_t prevId = kNoSegment;
    /** Log-chain digest of the last entry in this segment (anchors
     *  chain continuation for the next segment). */
    crypto::Digest chainTail{};
    /** Log-chain digest immediately before the first entry. */
    crypto::Digest chainAnchor{};
    /**
     * Owned entries. CAUTION: empty (not the truth) on a segment
     * that went through borrowEntries() — read via entrySpan(),
     * which is correct for both owned and borrowed segments.
     * Borrowed segments exist only transiently on the offload
     * engine's seal path; segments from deserialize() always own.
     */
    std::vector<LogEntry> entries;
    std::vector<PageRecord> pages;

    /**
     * Borrow the entry list from external contiguous storage (the
     * operation log's tail) instead of copying it into `entries`.
     * The storage must stay alive and unmodified until the segment
     * has been serialized/sealed. Zero-copy path for the offload
     * engine; tests and deserialize keep using the owned vector.
     */
    void
    borrowEntries(std::span<const LogEntry> view)
    {
        borrowedEntries_ = view;
        borrowed_ = true;
    }

    /** The entries this segment carries: borrowed view if set. */
    std::span<const LogEntry>
    entrySpan() const
    {
        return borrowed_ ? borrowedEntries_
                         : std::span<const LogEntry>(entries);
    }

    /** Exact byte size serialize() will produce. */
    std::size_t serializedSize() const;

    Bytes serialize() const;
    static Segment deserialize(const Bytes &raw);

  private:
    std::span<const LogEntry> borrowedEntries_{};
    bool borrowed_ = false;
};

/** Encrypted, authenticated wire form of a segment. */
struct SealedSegment
{
    std::uint64_t id = 0;
    std::uint64_t prevId = kNoSegment;
    crypto::Digest chainTail{};
    crypto::Digest chainAnchor{};
    std::uint64_t rawSize = 0;     ///< plaintext serialized size
    Bytes payload;                 ///< compressed + encrypted
    crypto::Digest hmac{};         ///< over header fields + payload
    std::uint32_t crc = 0;         ///< CRC32C of payload (link check)

    /** Bytes on the wire (header + payload). */
    std::uint64_t wireSize() const { return payload.size() + 128; }
};

/**
 * Chain re-anchor record. When the remote store garbage-collects the
 * oldest sealed segments of a stream past its retention window, it
 * writes one of these (signed under the stream's device key, which
 * only the trusted domain holds): the record names the last pruned
 * segment and carries the chain digest its successor must extend, so
 * verification of the surviving suffix starts here instead of at
 * genesis. Counters are cumulative across prunes — a stream has at
 * most one record, updated and re-signed on every prune.
 */
struct PruneRecord
{
    std::uint64_t stream = 0;         ///< StreamId being re-anchored
    std::uint64_t upToId = 0;         ///< last pruned segment id
    std::uint64_t segmentsPruned = 0; ///< cumulative segments expired
    std::uint64_t entriesPruned = 0;  ///< cumulative log entries lost
                                      ///< (== first surviving logSeq)
    std::uint64_t bytesPruned = 0;    ///< cumulative wire bytes freed
    Tick prunedAt = 0;                ///< time of the latest prune
    crypto::Digest anchor{};          ///< chainTail of last pruned seg
    crypto::Digest hmac{};            ///< over all fields above
};

/**
 * Seals and opens segments with a device key. The key never leaves
 * the trusted domain (firmware + remote store).
 */
class SegmentCodec
{
  public:
    explicit SegmentCodec(const crypto::Key256 &key)
        : key_(key), hmac_(key.data(), key.size())
    {
    }

    /** Derive a codec from a passphrase (tests / examples). */
    static SegmentCodec fromSeed(const std::string &seed);

    SealedSegment seal(const Segment &segment) const;

    /**
     * Verify authenticity and decrypt. panic()s on HMAC mismatch in
     * trusted-path code; use verify() first for adversarial inputs.
     */
    Segment open(const SealedSegment &sealed) const;

    /** Check the HMAC without decrypting. */
    bool verify(const SealedSegment &sealed) const;

    /** Sign a prune record (fills @p record.hmac). */
    void sealPrune(PruneRecord &record) const;

    /** Check a prune record's signature. */
    bool verifyPrune(const PruneRecord &record) const;

  private:
    /** Fixed-size authenticated header: id, prevId, chain digests,
     *  raw and payload sizes. */
    static constexpr std::size_t kHeaderSize = 8 + 8 + 32 + 32 + 8 + 8;
    using Header = std::array<std::uint8_t, kHeaderSize>;
    Header headerBytes(const SealedSegment &sealed) const;

    /** HMAC over header + payload without concatenating them. */
    crypto::Digest macOf(const SealedSegment &sealed) const;

    crypto::Key256 key_;
    /** Keyed HMAC schedule: the two key blocks are hashed once per
     *  codec, not once per segment. */
    crypto::HmacSha256 hmac_;
};

/** Result of handing a sealed segment to a sink. */
struct SubmitResult
{
    bool accepted = false;
    Tick ackAt = 0; ///< when the remote acknowledgment arrives
};

/**
 * Where sealed segments go. Implemented by the NVMe-oE transport
 * (production path) and by in-memory fakes in tests.
 */
class SegmentSink
{
  public:
    virtual ~SegmentSink() = default;
    virtual SubmitResult submitSegment(const SealedSegment &segment,
                                       Tick now) = 0;
};

} // namespace rssd::log

#endif // RSSD_LOG_SEGMENT_HH
