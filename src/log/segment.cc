#include "log/segment.hh"

#include <cstring>

#include "compress/lz.hh"
#include "crypto/crc32.hh"
#include "sim/logging.hh"

namespace rssd::log {

namespace {

constexpr std::uint32_t kMagic = 0x52535347u; // "RSSG"

void
put32(Bytes &out, std::uint32_t v)
{
    for (int i = 0; i < 4; i++)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
put64(Bytes &out, std::uint64_t v)
{
    for (int i = 0; i < 8; i++)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putDigest(Bytes &out, const crypto::Digest &d)
{
    out.insert(out.end(), d.begin(), d.end());
}

/** Bounds-checked little-endian reader. */
class Reader
{
  public:
    explicit Reader(const Bytes &data) : data_(data) {}

    std::uint32_t
    get32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; i++)
            v |= std::uint32_t(data_[pos_ + i]) << (8 * i);
        pos_ += 4;
        return v;
    }

    std::uint64_t
    get64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; i++)
            v |= std::uint64_t(data_[pos_ + i]) << (8 * i);
        pos_ += 8;
        return v;
    }

    std::uint8_t
    get8()
    {
        need(1);
        return data_[pos_++];
    }

    crypto::Digest
    getDigest()
    {
        need(32);
        crypto::Digest d;
        std::memcpy(d.data(), data_.data() + pos_, 32);
        pos_ += 32;
        return d;
    }

    Bytes
    getBytes(std::size_t n)
    {
        need(n);
        Bytes b(data_.begin() + pos_, data_.begin() + pos_ + n);
        pos_ += n;
        return b;
    }

    bool atEnd() const { return pos_ == data_.size(); }

  private:
    void
    need(std::size_t n) const
    {
        panicIf(pos_ + n > data_.size(), "segment: truncated field");
    }

    const Bytes &data_;
    std::size_t pos_ = 0;
};

} // namespace

Bytes
Segment::serialize() const
{
    Bytes out;
    put32(out, kMagic);
    put64(out, id);
    put64(out, prevId);
    putDigest(out, chainAnchor);
    putDigest(out, chainTail);
    put32(out, static_cast<std::uint32_t>(entries.size()));
    put32(out, static_cast<std::uint32_t>(pages.size()));

    for (const LogEntry &e : entries) {
        const auto body = e.serializeBody();
        out.insert(out.end(), body.begin(), body.end());
        putDigest(out, e.chain);
        // The float entropy rides separately from the quantized body
        // field so deserialization is lossless for analysis.
        std::uint32_t bits;
        static_assert(sizeof(bits) == sizeof(e.entropy));
        std::memcpy(&bits, &e.entropy, 4);
        put32(out, bits);
    }

    for (const PageRecord &p : pages) {
        put64(out, p.lpa);
        put64(out, p.dataSeq);
        put64(out, p.writtenAt);
        put64(out, p.invalidatedAt);
        out.push_back(static_cast<std::uint8_t>(p.cause));
        put32(out, static_cast<std::uint32_t>(p.content.size()));
        out.insert(out.end(), p.content.begin(), p.content.end());
    }
    return out;
}

Segment
Segment::deserialize(const Bytes &raw)
{
    Reader r(raw);
    panicIf(r.get32() != kMagic, "segment: bad magic");

    Segment seg;
    seg.id = r.get64();
    seg.prevId = r.get64();
    seg.chainAnchor = r.getDigest();
    seg.chainTail = r.getDigest();
    const std::uint32_t n_entries = r.get32();
    const std::uint32_t n_pages = r.get32();

    seg.entries.reserve(n_entries);
    for (std::uint32_t i = 0; i < n_entries; i++) {
        LogEntry e;
        e.logSeq = r.get64();
        e.op = static_cast<OpKind>(r.get8());
        e.lpa = r.get64();
        e.dataSeq = r.get64();
        e.prevDataSeq = r.get64();
        e.timestamp = r.get64();
        r.get32(); // quantized entropy inside the body; superseded below
        e.chain = r.getDigest();
        std::uint32_t bits = r.get32();
        std::memcpy(&e.entropy, &bits, 4);
        seg.entries.push_back(e);
    }

    seg.pages.reserve(n_pages);
    for (std::uint32_t i = 0; i < n_pages; i++) {
        PageRecord p;
        p.lpa = r.get64();
        p.dataSeq = r.get64();
        p.writtenAt = r.get64();
        p.invalidatedAt = r.get64();
        p.cause = static_cast<RetainCause>(r.get8());
        const std::uint32_t len = r.get32();
        p.content = r.getBytes(len);
        seg.pages.push_back(std::move(p));
    }
    panicIf(!r.atEnd(), "segment: trailing bytes");
    return seg;
}

SegmentCodec
SegmentCodec::fromSeed(const std::string &seed)
{
    return SegmentCodec(crypto::ChaCha20::deriveKey(seed));
}

Bytes
SegmentCodec::headerBytes(const SealedSegment &sealed) const
{
    Bytes h;
    put64(h, sealed.id);
    put64(h, sealed.prevId);
    putDigest(h, sealed.chainAnchor);
    putDigest(h, sealed.chainTail);
    put64(h, sealed.rawSize);
    put64(h, sealed.payload.size());
    return h;
}

SealedSegment
SegmentCodec::seal(const Segment &segment) const
{
    SealedSegment sealed;
    sealed.id = segment.id;
    sealed.prevId = segment.prevId;
    sealed.chainTail = segment.chainTail;
    sealed.chainAnchor = segment.chainAnchor;

    const Bytes raw = segment.serialize();
    sealed.rawSize = raw.size();
    sealed.payload = compress::lzCompress(raw);
    crypto::ChaCha20 cipher(key_,
                            crypto::ChaCha20::nonceFromSequence(
                                segment.id));
    cipher.apply(sealed.payload);
    sealed.crc = crypto::crc32c(sealed.payload);

    Bytes mac_input = headerBytes(sealed);
    mac_input.insert(mac_input.end(), sealed.payload.begin(),
                     sealed.payload.end());
    sealed.hmac = crypto::hmacSha256(key_.data(), key_.size(),
                                     mac_input.data(), mac_input.size());
    return sealed;
}

bool
SegmentCodec::verify(const SealedSegment &sealed) const
{
    if (crypto::crc32c(sealed.payload) != sealed.crc)
        return false;
    Bytes mac_input = headerBytes(sealed);
    mac_input.insert(mac_input.end(), sealed.payload.begin(),
                     sealed.payload.end());
    const crypto::Digest want = crypto::hmacSha256(
        key_.data(), key_.size(), mac_input.data(), mac_input.size());
    return want == sealed.hmac;
}

Segment
SegmentCodec::open(const SealedSegment &sealed) const
{
    panicIf(!verify(sealed), "segment: HMAC/CRC verification failed");
    Bytes plain = sealed.payload;
    crypto::ChaCha20 cipher(key_,
                            crypto::ChaCha20::nonceFromSequence(
                                sealed.id));
    cipher.apply(plain);
    const Bytes raw = compress::lzDecompress(plain, sealed.rawSize);
    return Segment::deserialize(raw);
}

} // namespace rssd::log
