#include "log/segment.hh"

#include <cstring>

#include "compress/lz.hh"
#include "crypto/crc32.hh"
#include "log/endian.hh"
#include "sim/logging.hh"

namespace rssd::log {

namespace {

constexpr std::uint32_t kMagic = 0x52535347u; // "RSSG"

// Serialized layout sizes (little-endian, packed).
constexpr std::size_t kSegmentHeaderSize = 4 + 8 + 8 + 32 + 32 + 4 + 4;
constexpr std::size_t kEntryWireSize = LogEntry::kBodySize + 32 + 4;
constexpr std::size_t kPageFixedSize = 8 + 8 + 8 + 8 + 1 + 4;

/**
 * Cursor-based little-endian writer over a pre-sized buffer. The
 * caller sizes the buffer with Segment::serializedSize() once; every
 * field then lands with a fixed-size memcpy instead of per-byte
 * push_back.
 */
class Writer
{
  public:
    explicit Writer(std::uint8_t *p) : p_(p) {}

    void
    u32(std::uint32_t v)
    {
        storeLe32(p_, v);
        p_ += 4;
    }

    void
    u64(std::uint64_t v)
    {
        storeLe64(p_, v);
        p_ += 8;
    }

    void
    u8(std::uint8_t v)
    {
        *p_++ = v;
    }

    void
    bytes(const void *src, std::size_t n)
    {
        if (n > 0)
            std::memcpy(p_, src, n);
        p_ += n;
    }

    void
    digest(const crypto::Digest &d)
    {
        bytes(d.data(), d.size());
    }

    const std::uint8_t *cursor() const { return p_; }

  private:
    std::uint8_t *p_;
};

/** Bounds-checked little-endian reader with word-at-a-time loads. */
class Reader
{
  public:
    explicit Reader(const Bytes &data) : data_(data) {}

    std::uint32_t
    get32()
    {
        need(4);
        const std::uint32_t v = loadLe32(data_.data() + pos_);
        pos_ += 4;
        return v;
    }

    std::uint64_t
    get64()
    {
        need(8);
        const std::uint64_t v = loadLe64(data_.data() + pos_);
        pos_ += 8;
        return v;
    }

    std::uint8_t
    get8()
    {
        need(1);
        return data_[pos_++];
    }

    crypto::Digest
    getDigest()
    {
        need(32);
        crypto::Digest d;
        std::memcpy(d.data(), data_.data() + pos_, 32);
        pos_ += 32;
        return d;
    }

    Bytes
    getBytes(std::size_t n)
    {
        need(n);
        Bytes b(data_.begin() + pos_, data_.begin() + pos_ + n);
        pos_ += n;
        return b;
    }

    bool atEnd() const { return pos_ == data_.size(); }

  private:
    void
    need(std::size_t n) const
    {
        // Subtract on the trusted side: pos_ <= size() always holds,
        // so a hostile length field cannot wrap the comparison the
        // way `pos_ + n > size()` could.
        panicIf(n > data_.size() - pos_, "segment: truncated field");
    }

    const Bytes &data_;
    std::size_t pos_ = 0;
};

} // namespace

std::size_t
Segment::serializedSize() const
{
    std::size_t total = kSegmentHeaderSize;
    total += entrySpan().size() * kEntryWireSize;
    total += pages.size() * kPageFixedSize;
    for (const PageRecord &p : pages)
        total += p.content.size();
    return total;
}

Bytes
Segment::serialize() const
{
    Bytes out(serializedSize());
    Writer w(out.data());

    const std::span<const LogEntry> ents = entrySpan();
    w.u32(kMagic);
    w.u64(id);
    w.u64(prevId);
    w.digest(chainAnchor);
    w.digest(chainTail);
    w.u32(static_cast<std::uint32_t>(ents.size()));
    w.u32(static_cast<std::uint32_t>(pages.size()));

    for (const LogEntry &e : ents) {
        const auto body = e.serializeBody();
        w.bytes(body.data(), body.size());
        w.digest(e.chain);
        // The float entropy rides separately from the quantized body
        // field so deserialization is lossless for analysis.
        std::uint32_t bits;
        static_assert(sizeof(bits) == sizeof(e.entropy));
        std::memcpy(&bits, &e.entropy, 4);
        w.u32(bits);
    }

    for (const PageRecord &p : pages) {
        w.u64(p.lpa);
        w.u64(p.dataSeq);
        w.u64(p.writtenAt);
        w.u64(p.invalidatedAt);
        w.u8(static_cast<std::uint8_t>(p.cause));
        w.u32(static_cast<std::uint32_t>(p.content.size()));
        w.bytes(p.content.data(), p.content.size());
    }
    panicIf(w.cursor() != out.data() + out.size(),
            "segment: serializedSize mismatch");
    return out;
}

Segment
Segment::deserialize(const Bytes &raw)
{
    Reader r(raw);
    panicIf(r.get32() != kMagic, "segment: bad magic");

    Segment seg;
    seg.id = r.get64();
    seg.prevId = r.get64();
    seg.chainAnchor = r.getDigest();
    seg.chainTail = r.getDigest();
    const std::uint32_t n_entries = r.get32();
    const std::uint32_t n_pages = r.get32();

    seg.entries.reserve(n_entries);
    for (std::uint32_t i = 0; i < n_entries; i++) {
        LogEntry e;
        e.logSeq = r.get64();
        e.op = static_cast<OpKind>(r.get8());
        e.lpa = r.get64();
        e.dataSeq = r.get64();
        e.prevDataSeq = r.get64();
        e.timestamp = r.get64();
        r.get32(); // quantized entropy inside the body; superseded below
        e.chain = r.getDigest();
        std::uint32_t bits = r.get32();
        std::memcpy(&e.entropy, &bits, 4);
        seg.entries.push_back(e);
    }

    seg.pages.reserve(n_pages);
    for (std::uint32_t i = 0; i < n_pages; i++) {
        PageRecord p;
        p.lpa = r.get64();
        p.dataSeq = r.get64();
        p.writtenAt = r.get64();
        p.invalidatedAt = r.get64();
        p.cause = static_cast<RetainCause>(r.get8());
        const std::uint32_t len = r.get32();
        p.content = r.getBytes(len);
        seg.pages.push_back(std::move(p));
    }
    panicIf(!r.atEnd(), "segment: trailing bytes");
    return seg;
}

SegmentCodec
SegmentCodec::fromSeed(const std::string &seed)
{
    return SegmentCodec(crypto::ChaCha20::deriveKey(seed));
}

SegmentCodec::Header
SegmentCodec::headerBytes(const SealedSegment &sealed) const
{
    Header h;
    Writer w(h.data());
    w.u64(sealed.id);
    w.u64(sealed.prevId);
    w.digest(sealed.chainAnchor);
    w.digest(sealed.chainTail);
    w.u64(sealed.rawSize);
    w.u64(sealed.payload.size());
    return h;
}

crypto::Digest
SegmentCodec::macOf(const SealedSegment &sealed) const
{
    // Copying the keyed schedule reuses the precomputed ipad/opad
    // states; header and payload stream through without ever being
    // concatenated into a scratch buffer.
    crypto::HmacSha256 mac = hmac_;
    const Header h = headerBytes(sealed);
    mac.update(h.data(), h.size());
    mac.update(sealed.payload.data(), sealed.payload.size());
    return mac.finish();
}

SealedSegment
SegmentCodec::seal(const Segment &segment) const
{
    SealedSegment sealed;
    sealed.id = segment.id;
    sealed.prevId = segment.prevId;
    sealed.chainTail = segment.chainTail;
    sealed.chainAnchor = segment.chainAnchor;

    const Bytes raw = segment.serialize();
    sealed.rawSize = raw.size();
    sealed.payload = compress::lzCompress(raw);
    crypto::ChaCha20 cipher(key_,
                            crypto::ChaCha20::nonceFromSequence(
                                segment.id));
    cipher.apply(sealed.payload);
    sealed.crc = crypto::crc32c(sealed.payload);
    sealed.hmac = macOf(sealed);
    return sealed;
}

bool
SegmentCodec::verify(const SealedSegment &sealed) const
{
    if (crypto::crc32c(sealed.payload) != sealed.crc)
        return false;
    return macOf(sealed) == sealed.hmac;
}

namespace {

/** Fixed-size authenticated body of a prune record. */
constexpr std::size_t kPruneBodySize = 6 * 8 + 32;

std::array<std::uint8_t, kPruneBodySize>
pruneBody(const PruneRecord &record)
{
    std::array<std::uint8_t, kPruneBodySize> body;
    Writer w(body.data());
    w.u64(record.stream);
    w.u64(record.upToId);
    w.u64(record.segmentsPruned);
    w.u64(record.entriesPruned);
    w.u64(record.bytesPruned);
    w.u64(record.prunedAt);
    w.digest(record.anchor);
    return body;
}

} // namespace

void
SegmentCodec::sealPrune(PruneRecord &record) const
{
    crypto::HmacSha256 mac = hmac_;
    const auto body = pruneBody(record);
    mac.update(body.data(), body.size());
    record.hmac = mac.finish();
}

bool
SegmentCodec::verifyPrune(const PruneRecord &record) const
{
    crypto::HmacSha256 mac = hmac_;
    const auto body = pruneBody(record);
    mac.update(body.data(), body.size());
    return mac.finish() == record.hmac;
}

Segment
SegmentCodec::open(const SealedSegment &sealed) const
{
    panicIf(!verify(sealed), "segment: HMAC/CRC verification failed");
    // Decrypt on the fly: the keystream XOR reads the sealed payload
    // and writes the plaintext buffer in one pass, with no
    // copy-then-decrypt round trip.
    Bytes plain(sealed.payload.size());
    crypto::ChaCha20 cipher(key_,
                            crypto::ChaCha20::nonceFromSequence(
                                sealed.id));
    cipher.apply(sealed.payload.data(), plain.data(), plain.size());
    const Bytes raw = compress::lzDecompress(plain, sealed.rawSize);
    return Segment::deserialize(raw);
}

} // namespace rssd::log
