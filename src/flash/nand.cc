#include "flash/nand.hh"

#include <algorithm>

namespace rssd::flash {

Geometry
testGeometry()
{
    // 2 ch x 2 chips x 1 plane x 16 blocks x 64 pages x 4 KiB = 16 MiB
    Geometry g;
    g.channels = 2;
    g.chipsPerChannel = 2;
    g.planesPerChip = 1;
    g.blocksPerPlane = 16;
    g.pagesPerBlock = 64;
    g.pageSize = 4096;
    return g;
}

Geometry
benchGeometry(std::uint32_t gib)
{
    // Scale block count; keep the channel organization fixed.
    Geometry g;
    g.channels = 8;
    g.chipsPerChannel = 4;
    g.planesPerChip = 2;
    g.pagesPerBlock = 256;
    g.pageSize = 4096;
    // bytes per (plane-indexed) block position across all planes:
    const std::uint64_t per_block_all =
        g.chipsTotal() * g.planesPerChip * g.blockBytes();
    const std::uint64_t want = std::uint64_t(gib) * units::GiB;
    g.blocksPerPlane =
        static_cast<std::uint32_t>(std::max<std::uint64_t>(
            1, want / per_block_all));
    return g;
}

NandFlash::NandFlash(const Geometry &geom, const LatencyModel &lat)
    : geom_(geom), lat_(lat)
{
    geom_.validate();
    pageState_.assign(geom_.totalPages(), PageState::Erased);
    oob_.assign(geom_.totalPages(), Oob());
    eraseCounts_.assign(geom_.totalBlocks(), 0);
    channels_.resize(geom_.channels);
    chips_.resize(geom_.chipsTotal());
}

void
NandFlash::checkPpa(Ppa ppa) const
{
    panicIf(ppa >= geom_.totalPages(), "NandFlash: ppa out of bounds");
}

Tick
NandFlash::servePageOp(Ppa ppa, Tick now, Tick array_time,
                       std::uint64_t xfer_bytes, bool background)
{
    const std::uint32_t ch = geom_.channelOf(ppa);
    const std::uint32_t chip = geom_.globalChipOf(ppa);
    const Tick xfer = lat_.transferTime(xfer_bytes);

    // The op starts when both the channel and the chip are free; the
    // channel is held for the data transfer, the chip for transfer
    // plus the array operation. Background ops wait their turn but
    // never reserve the resources, so host traffic is not delayed by
    // them (idle-time scheduling).
    const Tick start = std::max({now, channels_[ch].busyUntil(),
                                 chips_[chip].busyUntil()});
    if (background)
        return start + xfer + array_time;
    channels_[ch].serve(start, xfer);
    return chips_[chip].serve(start, xfer + array_time);
}

Tick
NandFlash::program(Ppa ppa, const Oob &oob, const Bytes &content,
                   Tick now)
{
    checkPpa(ppa);
    panicIf(pageState_[ppa] != PageState::Erased,
            "NAND program to a non-erased page (FTL bug)");
    panicIf(!content.empty() && content.size() != geom_.pageSize,
            "NAND program content size != page size");

    pageState_[ppa] = PageState::Programmed;
    oob_[ppa] = oob;
    if (!content.empty())
        contents_[ppa] = content;

    stats_.programs++;
    stats_.bytesProgrammed += geom_.pageSize;
    return servePageOp(ppa, now, lat_.pageProgramArray,
                       geom_.pageSize, /*background=*/false);
}

Tick
NandFlash::read(Ppa ppa, Tick now, bool background)
{
    checkPpa(ppa);
    panicIf(pageState_[ppa] != PageState::Programmed,
            "NAND read of an erased page (FTL bug)");

    stats_.reads++;
    stats_.bytesRead += geom_.pageSize;
    return servePageOp(ppa, now, lat_.pageReadArray, geom_.pageSize,
                       background);
}

Tick
NandFlash::eraseBlock(BlockId blk, Tick now)
{
    panicIf(blk >= geom_.totalBlocks(), "NAND erase: block OOB");

    const Ppa first = geom_.firstPpaOf(blk);
    for (std::uint32_t i = 0; i < geom_.pagesPerBlock; i++) {
        const Ppa ppa = first + i;
        pageState_[ppa] = PageState::Erased;
        oob_[ppa] = Oob();
        contents_.erase(ppa);
    }
    eraseCounts_[blk]++;
    stats_.erases++;

    // Erase occupies the chip but moves no channel data.
    const std::uint32_t chip = geom_.globalChipOf(first);
    const Tick start = std::max(now, chips_[chip].busyUntil());
    return chips_[chip].serve(start, lat_.blockErase);
}

PageState
NandFlash::state(Ppa ppa) const
{
    checkPpa(ppa);
    return pageState_[ppa];
}

const Oob &
NandFlash::oob(Ppa ppa) const
{
    checkPpa(ppa);
    panicIf(pageState_[ppa] != PageState::Programmed,
            "NAND oob() of an erased page");
    return oob_[ppa];
}

const Bytes &
NandFlash::content(Ppa ppa) const
{
    checkPpa(ppa);
    panicIf(pageState_[ppa] != PageState::Programmed,
            "NAND content() of an erased page");
    const auto it = contents_.find(ppa);
    return it == contents_.end() ? emptyContent_ : it->second;
}

std::uint32_t
NandFlash::eraseCount(BlockId blk) const
{
    panicIf(blk >= geom_.totalBlocks(), "eraseCount: block OOB");
    return eraseCounts_[blk];
}

std::uint32_t
NandFlash::maxEraseCount() const
{
    return *std::max_element(eraseCounts_.begin(), eraseCounts_.end());
}

double
NandFlash::meanEraseCount() const
{
    std::uint64_t sum = 0;
    for (auto c : eraseCounts_)
        sum += c;
    return static_cast<double>(sum) /
           static_cast<double>(eraseCounts_.size());
}

} // namespace rssd::flash
