/**
 * @file
 * Timing model of the NAND array and the channel interconnect.
 *
 * Defaults approximate MLC NAND as used by the Cosmos+ OpenSSD board:
 * ~50 us page read, ~600 us page program, ~3 ms block erase, 400 MB/s
 * per-channel transfer.
 */

#ifndef RSSD_FLASH_LATENCY_HH
#define RSSD_FLASH_LATENCY_HH

#include <cstdint>

#include "sim/units.hh"

namespace rssd::flash {

struct LatencyModel
{
    Tick pageReadArray = 50 * units::US;    ///< cell array -> page reg
    Tick pageProgramArray = 600 * units::US;///< page reg -> cell array
    Tick blockErase = 3 * units::MS;
    double channelMBps = 400.0;             ///< bus speed per channel

    /** Time to move @p bytes across one channel. */
    Tick
    transferTime(std::uint64_t bytes) const
    {
        const double ns =
            static_cast<double>(bytes) * 1000.0 / channelMBps;
        return static_cast<Tick>(ns) + 1;
    }
};

} // namespace rssd::flash

#endif // RSSD_FLASH_LATENCY_HH
