/**
 * @file
 * NAND flash geometry: the channel/chip/plane/block/page hierarchy of
 * the simulated SSD (mirrors the Cosmos+ OpenSSD organization in
 * Figure 1 of the paper).
 *
 * A physical page address (PPA) is a dense 64-bit index over all
 * pages; Geometry provides the decomposition into hierarchy
 * coordinates. A logical page address (LPA) indexes 4 KiB logical
 * pages in the exported address space.
 */

#ifndef RSSD_FLASH_GEOMETRY_HH
#define RSSD_FLASH_GEOMETRY_HH

#include <cstdint>

#include "sim/logging.hh"
#include "sim/units.hh"

namespace rssd::flash {

/** Dense physical page index across the whole device. */
using Ppa = std::uint64_t;
/** Logical (host-visible) page index. */
using Lpa = std::uint64_t;
/** Dense physical block index across the whole device. */
using BlockId = std::uint64_t;

/** Sentinel for "no physical page". */
constexpr Ppa kInvalidPpa = ~0ull;
/** Sentinel for "no logical page". */
constexpr Lpa kInvalidLpa = ~0ull;

/** Hierarchical coordinates of a page. */
struct PageCoord
{
    std::uint32_t channel;
    std::uint32_t chip;   ///< within channel
    std::uint32_t plane;  ///< within chip
    std::uint32_t block;  ///< within plane
    std::uint32_t page;   ///< within block
};

/**
 * Static description of the flash array. All counts are per parent
 * level. Default values model a mid-size enterprise SSD channel
 * organization.
 */
struct Geometry
{
    std::uint32_t channels = 8;
    std::uint32_t chipsPerChannel = 4;
    std::uint32_t planesPerChip = 2;
    std::uint32_t blocksPerPlane = 256;
    std::uint32_t pagesPerBlock = 256;
    std::uint32_t pageSize = 4096;

    std::uint64_t
    chipsTotal() const
    {
        return std::uint64_t(channels) * chipsPerChannel;
    }

    std::uint64_t
    blocksPerChip() const
    {
        return std::uint64_t(planesPerChip) * blocksPerPlane;
    }

    std::uint64_t
    totalBlocks() const
    {
        return chipsTotal() * blocksPerChip();
    }

    std::uint64_t
    totalPages() const
    {
        return totalBlocks() * pagesPerBlock;
    }

    std::uint64_t
    capacityBytes() const
    {
        return totalPages() * pageSize;
    }

    std::uint64_t
    blockBytes() const
    {
        return std::uint64_t(pagesPerBlock) * pageSize;
    }

    /** Block containing @p ppa. */
    BlockId
    blockOf(Ppa ppa) const
    {
        return ppa / pagesPerBlock;
    }

    /** Page offset of @p ppa within its block. */
    std::uint32_t
    pageInBlock(Ppa ppa) const
    {
        return static_cast<std::uint32_t>(ppa % pagesPerBlock);
    }

    /** First PPA of block @p blk. */
    Ppa
    firstPpaOf(BlockId blk) const
    {
        return blk * pagesPerBlock;
    }

    /** Channel that owns @p ppa (blocks are striped over chips). */
    std::uint32_t
    channelOf(Ppa ppa) const
    {
        return decompose(ppa).channel;
    }

    /** Chip (global index over all channels) that owns @p ppa. */
    std::uint32_t
    globalChipOf(Ppa ppa) const
    {
        const PageCoord c = decompose(ppa);
        return c.channel * chipsPerChannel + c.chip;
    }

    /** Full hierarchical decomposition of @p ppa. */
    PageCoord
    decompose(Ppa ppa) const
    {
        panicIf(ppa >= totalPages(), "Geometry::decompose: ppa OOB");
        PageCoord c;
        c.page = static_cast<std::uint32_t>(ppa % pagesPerBlock);
        std::uint64_t rest = ppa / pagesPerBlock; // block index
        c.block = static_cast<std::uint32_t>(rest % blocksPerPlane);
        rest /= blocksPerPlane;
        c.plane = static_cast<std::uint32_t>(rest % planesPerChip);
        rest /= planesPerChip;
        c.chip = static_cast<std::uint32_t>(rest % chipsPerChannel);
        rest /= chipsPerChannel;
        c.channel = static_cast<std::uint32_t>(rest);
        return c;
    }

    /** Validate configuration; fatal() on nonsense values. */
    void
    validate() const
    {
        if (channels == 0 || chipsPerChannel == 0 || planesPerChip == 0 ||
            blocksPerPlane == 0 || pagesPerBlock == 0 || pageSize == 0) {
            fatal("flash geometry has a zero dimension");
        }
    }
};

/** A small geometry for unit tests (64 MiB). */
Geometry testGeometry();

/** A medium geometry for benches (capacity ~= @p gib GiB). */
Geometry benchGeometry(std::uint32_t gib);

} // namespace rssd::flash

#endif // RSSD_FLASH_GEOMETRY_HH
