/**
 * @file
 * The NAND flash array model: per-page program state, out-of-band
 * (OOB) metadata, per-block erase counts, optional page content, and
 * latency accounting over channels and chips.
 *
 * Content storage is sparse: pages written with an empty payload
 * consume no content memory, so large trace-replay experiments can
 * run address-only while functional tests and recovery experiments
 * store real bytes.
 */

#ifndef RSSD_FLASH_NAND_HH
#define RSSD_FLASH_NAND_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "flash/geometry.hh"
#include "flash/latency.hh"
#include "sim/clock.hh"
#include "sim/units.hh"

namespace rssd::flash {

using Bytes = std::vector<std::uint8_t>;

/** Program state of a physical page. */
enum class PageState : std::uint8_t {
    Erased,      ///< never programmed since last erase
    Programmed,  ///< holds data
};

/**
 * Out-of-band metadata programmed with each page. Real SSDs store the
 * reverse map (LPA) and a sequence number in the page's spare area;
 * RSSD's logging additionally relies on the write timestamp.
 */
struct Oob
{
    Lpa lpa = kInvalidLpa;       ///< reverse mapping
    std::uint64_t seq = 0;       ///< global write sequence number
    Tick writeTick = 0;          ///< simulated time of the program op
};

/** Aggregate operation counters for the array. */
struct NandStats
{
    std::uint64_t reads = 0;
    std::uint64_t programs = 0;
    std::uint64_t erases = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesProgrammed = 0;
};

/**
 * The flash array. All operations take the current simulated time and
 * return the operation's completion time; channel and chip contention
 * are modelled with BusyResource horizons.
 *
 * The array enforces NAND physics: a page must be erased before it is
 * programmed, erases operate on whole blocks, and reads of erased
 * pages are rejected (an FTL bug, hence panic).
 */
class NandFlash
{
  public:
    NandFlash(const Geometry &geom, const LatencyModel &lat);

    const Geometry &geometry() const { return geom_; }
    const LatencyModel &latency() const { return lat_; }

    /**
     * Program page @p ppa with metadata @p oob and optional content.
     * @return completion time.
     */
    Tick program(Ppa ppa, const Oob &oob, const Bytes &content, Tick now);

    /**
     * Read page @p ppa. @return completion time. Content (if any) is
     * available through content().
     *
     * @param background  true for firmware-internal reads (the
     *     offload data path): they wait for the channel/chip to be
     *     idle but do NOT reserve them, so host I/O arriving later
     *     is never delayed — modelling the controller's idle-time
     *     scheduling of background traffic.
     */
    Tick read(Ppa ppa, Tick now, bool background = false);

    /** Erase block @p blk, releasing all its pages. */
    Tick eraseBlock(BlockId blk, Tick now);

    /** Program state of a page. */
    PageState state(Ppa ppa) const;

    /** OOB of a programmed page. */
    const Oob &oob(Ppa ppa) const;

    /**
     * Content of a programmed page; empty if the page was programmed
     * address-only.
     */
    const Bytes &content(Ppa ppa) const;

    /** Lifetime erase count of a block (P/E cycles). */
    std::uint32_t eraseCount(BlockId blk) const;

    /** Max and mean erase counts (wear-leveling metrics). */
    std::uint32_t maxEraseCount() const;
    double meanEraseCount() const;

    const NandStats &stats() const { return stats_; }

  private:
    void checkPpa(Ppa ppa) const;

    /** Account a page-granularity op on the owning chip + channel. */
    Tick servePageOp(Ppa ppa, Tick now, Tick array_time,
                     std::uint64_t xfer_bytes, bool background);

    Geometry geom_;
    LatencyModel lat_;

    std::vector<PageState> pageState_;
    std::vector<Oob> oob_;
    std::vector<std::uint32_t> eraseCounts_;
    std::unordered_map<Ppa, Bytes> contents_;

    std::vector<BusyResource> channels_;
    std::vector<BusyResource> chips_;

    NandStats stats_;
    Bytes emptyContent_;
};

} // namespace rssd::flash

#endif // RSSD_FLASH_NAND_HH
