/**
 * @file
 * NVMe-over-Ethernet transport: reliable, in-order delivery of sealed
 * log segments from the SSD to the remote backup target.
 *
 * Each segment rides in a command capsule followed by data capsules
 * (one per MTU). The far end checks the payload CRC; a corrupted
 * transfer is retransmitted after a timeout, up to a retry budget.
 * The transport is the only component with access to the wire — the
 * host CPU and OS never see this traffic, which is the paper's
 * hardware-isolation argument.
 */

#ifndef RSSD_NET_TRANSPORT_HH
#define RSSD_NET_TRANSPORT_HH

#include <cstdint>

#include "log/segment.hh"
#include "net/link.hh"

namespace rssd::net {

/**
 * Receiver side of the NVMe-oE session (implemented by the remote
 * backup store).
 */
class CapsuleTarget
{
  public:
    virtual ~CapsuleTarget() = default;

    /**
     * Deliver a verified-on-the-wire segment.
     * @param arrive_at  delivery time of the last data capsule
     * @param ack_ready_at  out: when the target finished processing
     * @return false if the target rejects the segment (full, bad
     *         authentication, chain violation).
     */
    virtual bool ingestSegment(const log::SealedSegment &segment,
                               Tick arrive_at, Tick &ack_ready_at) = 0;
};

/** Transport counters. */
struct TransportStats
{
    std::uint64_t segmentsSent = 0;
    std::uint64_t segmentsAccepted = 0;
    std::uint64_t segmentsRejected = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t bytesSent = 0;
};

/** Transport configuration. */
struct TransportConfig
{
    std::uint32_t capsuleHeaderBytes = 64;
    std::uint32_t ackBytes = 64;
    std::uint32_t maxRetries = 4;
    Tick retransmitTimeout = 200 * units::US;
};

/** The device-side initiator. Implements log::SegmentSink. */
class NvmeOeTransport : public log::SegmentSink
{
  public:
    NvmeOeTransport(const TransportConfig &config, EthernetLink &link,
                    CapsuleTarget &target);

    log::SubmitResult submitSegment(const log::SealedSegment &segment,
                                    Tick now) override;

    const TransportStats &stats() const { return stats_; }

  private:
    TransportConfig config_;
    EthernetLink &link_;
    CapsuleTarget &target_;
    TransportStats stats_;
};

} // namespace rssd::net

#endif // RSSD_NET_TRANSPORT_HH
