#include "net/link.hh"

#include "sim/logging.hh"

namespace rssd::net {

Tick
LinkDirection::transmit(std::uint64_t payload_bytes, Tick now)
{
    panicIf(config_.mtu == 0, "link mtu == 0");
    const std::uint64_t frames =
        (payload_bytes + config_.mtu - 1) / config_.mtu;
    const std::uint64_t on_wire =
        payload_bytes + frames * config_.frameOverhead;

    const Tick tx_time = units::transferTimeNs(on_wire, config_.gbps);
    const Tick sent = wire_.serve(now, tx_time);

    stats_.framesSent += frames;
    stats_.payloadBytes += payload_bytes;
    stats_.wireBytes += on_wire;

    lastCorrupted_ = corruptNext_ > 0;
    if (corruptNext_ > 0) {
        stats_.corruptedFrames++;
        corruptNext_--;
    }
    return sent + config_.propagationDelay;
}

} // namespace rssd::net
