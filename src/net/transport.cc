#include "net/transport.hh"

#include "sim/logging.hh"

namespace rssd::net {

NvmeOeTransport::NvmeOeTransport(const TransportConfig &config,
                                 EthernetLink &link,
                                 CapsuleTarget &target)
    : config_(config), link_(link), target_(target)
{
}

log::SubmitResult
NvmeOeTransport::submitSegment(const log::SealedSegment &segment,
                               Tick now)
{
    const std::uint64_t wire_payload =
        segment.wireSize() + config_.capsuleHeaderBytes;

    Tick t = now;
    for (std::uint32_t attempt = 0; attempt <= config_.maxRetries;
         attempt++) {
        const Tick arrive = link_.tx().transmit(wire_payload, t);
        stats_.segmentsSent++;
        stats_.bytesSent += wire_payload;

        if (link_.tx().lastTransferCorrupted()) {
            // Far-end CRC check fails; wait out the ack timeout and
            // retransmit the whole segment.
            stats_.retransmits++;
            t = arrive + config_.retransmitTimeout;
            continue;
        }

        Tick ack_ready = arrive;
        const bool accepted =
            target_.ingestSegment(segment, arrive, ack_ready);
        const Tick ack_arrive =
            link_.rx().transmit(config_.ackBytes, ack_ready);
        if (accepted) {
            stats_.segmentsAccepted++;
            return {true, ack_arrive};
        }
        stats_.segmentsRejected++;
        return {false, ack_arrive};
    }

    // Retry budget exhausted: report as rejected at the current time.
    warn("NVMe-oE transport: segment dropped after retries");
    stats_.segmentsRejected++;
    return {false, t};
}

} // namespace rssd::net
