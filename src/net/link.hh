/**
 * @file
 * Full-duplex Ethernet link model for the hardware-isolated NVMe-oE
 * path (Figure 1: DMA -> Tx/Rx buffers -> MAC -> transceiver).
 *
 * The link carries opaque byte payloads split into MTU-sized frames,
 * each paying Ethernet framing overhead (preamble, header, FCS,
 * inter-frame gap). Each direction is an independent serial resource,
 * so offload traffic and acknowledgments don't contend.
 *
 * Fault injection: tests can arm single-frame corruption; the
 * transport detects it via CRC and retransmits.
 */

#ifndef RSSD_NET_LINK_HH
#define RSSD_NET_LINK_HH

#include <cstdint>

#include "sim/clock.hh"
#include "sim/units.hh"

namespace rssd::net {

/** Link parameters. Defaults: 10 GbE with jumbo frames. */
struct LinkConfig
{
    double gbps = 10.0;            ///< line rate per direction
    Tick propagationDelay = 50 * units::US; ///< one-way (device<->server)
    std::uint32_t mtu = 9000;      ///< payload bytes per frame
    std::uint32_t frameOverhead = 38; ///< preamble+hdr+FCS+IFG bytes
};

/** Per-direction transfer counters. */
struct LinkStats
{
    std::uint64_t framesSent = 0;
    std::uint64_t payloadBytes = 0;
    std::uint64_t wireBytes = 0;
    std::uint64_t corruptedFrames = 0;
};

/** One direction of the link. */
class LinkDirection
{
  public:
    LinkDirection(const LinkConfig &config) : config_(config) {}

    /**
     * Transmit @p payload_bytes starting at @p now.
     * @return delivery time at the far end.
     */
    Tick transmit(std::uint64_t payload_bytes, Tick now);

    /** Arm corruption of one frame in the next transmission. */
    void corruptNextTransfer() { corruptNext_ = 1; }

    /** Arm corruption of one frame in each of the next @p n
     *  transmissions (retry-exhaustion testing). */
    void corruptNextTransfers(std::uint32_t n) { corruptNext_ = n; }

    /** True if the last transmission contained a corrupted frame. */
    bool lastTransferCorrupted() const { return lastCorrupted_; }

    const LinkStats &stats() const { return stats_; }

  private:
    LinkConfig config_;
    BusyResource wire_;
    LinkStats stats_;
    std::uint32_t corruptNext_ = 0;
    bool lastCorrupted_ = false;
};

/** The full-duplex link: device->server (tx) and server->device (rx). */
class EthernetLink
{
  public:
    explicit EthernetLink(const LinkConfig &config)
        : config_(config), tx_(config), rx_(config)
    {
    }

    const LinkConfig &config() const { return config_; }
    LinkDirection &tx() { return tx_; }
    LinkDirection &rx() { return rx_; }

  private:
    LinkConfig config_;
    LinkDirection tx_;
    LinkDirection rx_;
};

} // namespace rssd::net

#endif // RSSD_NET_LINK_HH
