/**
 * @file
 * LocalSsd: the undefended baseline device ("LocalSSD" in Figure 2).
 * A thin BlockDevice adapter over the page-mapped FTL with no
 * retention policy — invalidated and trimmed pages are plain garbage
 * and are physically erased by GC.
 */

#ifndef RSSD_NVME_LOCAL_SSD_HH
#define RSSD_NVME_LOCAL_SSD_HH

#include "ftl/ftl.hh"
#include "nvme/command.hh"
#include "sim/clock.hh"

namespace rssd::nvme {

class LocalSsd : public BlockDevice
{
  public:
    LocalSsd(const ftl::FtlConfig &config, VirtualClock &clock);

    Completion submit(const Command &cmd) override;

    std::uint64_t capacityPages() const override;
    std::uint32_t pageSize() const override;

    ftl::PageMappedFtl &ftl() { return ftl_; }
    const ftl::PageMappedFtl &ftl() const { return ftl_; }
    VirtualClock &clock() { return clock_; }

  private:
    VirtualClock &clock_;
    ftl::PageMappedFtl ftl_;
};

/**
 * Shared helper used by every BlockDevice implementation that fronts
 * a PageMappedFtl: splits a multi-page command into page ops through
 * @p write / @p read / @p trim callables and assembles the
 * completion. Factored out so RSSD and all baselines behave
 * identically at the command layer.
 */
template <typename WriteFn, typename ReadFn, typename TrimFn>
Completion
executeOnFtl(const Command &cmd, std::uint32_t page_size,
             std::uint64_t capacity_pages, VirtualClock &clock,
             WriteFn &&write, ReadFn &&read, TrimFn &&trim)
{
    Completion comp;
    comp.submittedAt = clock.now();
    comp.completedAt = clock.now();

    if (cmd.op != Opcode::Flush &&
        (cmd.npages == 0 ||
         cmd.lpa + cmd.npages > capacity_pages)) {
        comp.status = HostStatus::InvalidField;
        return comp;
    }
    if (cmd.op == Opcode::Write && !cmd.data.empty() &&
        cmd.data.size() !=
            static_cast<std::size_t>(cmd.npages) * page_size) {
        comp.status = HostStatus::InvalidField;
        return comp;
    }

    Tick done = clock.now();
    for (std::uint32_t i = 0; i < cmd.npages; i++) {
        const flash::Lpa lpa = cmd.lpa + i;
        if (cmd.op == Opcode::Write) {
            std::vector<std::uint8_t> page;
            if (!cmd.data.empty()) {
                page.assign(cmd.data.begin() +
                                std::size_t(i) * page_size,
                            cmd.data.begin() +
                                std::size_t(i + 1) * page_size);
            }
            const ftl::IoResult r = write(lpa, page);
            if (r.status == ftl::Status::NoSpace) {
                comp.status = HostStatus::DeviceFull;
                comp.completedAt = r.completeAt;
                return comp;
            }
            done = std::max(done, r.completeAt);
        } else if (cmd.op == Opcode::Read) {
            std::vector<std::uint8_t> page;
            const ftl::IoResult r = read(lpa, page);
            done = std::max(done, r.completeAt);
            if (page.empty())
                page.assign(page_size, 0); // unmapped or address-only
            comp.data.insert(comp.data.end(), page.begin(), page.end());
        } else if (cmd.op == Opcode::Trim) {
            const ftl::IoResult r = trim(lpa);
            done = std::max(done, r.completeAt);
        }
    }
    if (cmd.op == Opcode::Flush)
        done += 20 * units::US;

    comp.completedAt = done;
    clock.advanceTo(done);
    return comp;
}

} // namespace rssd::nvme

#endif // RSSD_NVME_LOCAL_SSD_HH
