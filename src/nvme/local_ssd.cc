#include "nvme/local_ssd.hh"

namespace rssd::nvme {

LocalSsd::LocalSsd(const ftl::FtlConfig &config, VirtualClock &clock)
    : clock_(clock), ftl_(config, clock)
{
}

Completion
LocalSsd::submit(const Command &cmd)
{
    return executeOnFtl(
        cmd, pageSize(), capacityPages(), clock_,
        [this](flash::Lpa lpa, const std::vector<std::uint8_t> &page) {
            return ftl_.write(lpa, page, clock_.now());
        },
        [this](flash::Lpa lpa, std::vector<std::uint8_t> &page) {
            const ftl::IoResult r = ftl_.read(lpa, clock_.now());
            if (r.status == ftl::Status::Ok)
                page = ftl_.lastReadContent();
            return r;
        },
        [this](flash::Lpa lpa) { return ftl_.trim(lpa, clock_.now()); });
}

std::uint64_t
LocalSsd::capacityPages() const
{
    return ftl_.logicalPages();
}

std::uint32_t
LocalSsd::pageSize() const
{
    return ftl_.config().geometry.pageSize;
}

} // namespace rssd::nvme
