#include "nvme/command.hh"

namespace rssd::nvme {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Read: return "READ";
      case Opcode::Write: return "WRITE";
      case Opcode::Trim: return "TRIM";
      case Opcode::Flush: return "FLUSH";
    }
    return "?";
}

Completion
BlockDevice::writePage(Lpa lpa, const std::vector<std::uint8_t> &data)
{
    Command cmd;
    cmd.op = Opcode::Write;
    cmd.lpa = lpa;
    cmd.npages = 1;
    cmd.data = data;
    return submit(cmd);
}

Completion
BlockDevice::readPage(Lpa lpa)
{
    Command cmd;
    cmd.op = Opcode::Read;
    cmd.lpa = lpa;
    cmd.npages = 1;
    return submit(cmd);
}

Completion
BlockDevice::trimPage(Lpa lpa)
{
    Command cmd;
    cmd.op = Opcode::Trim;
    cmd.lpa = lpa;
    cmd.npages = 1;
    return submit(cmd);
}

} // namespace rssd::nvme
