/**
 * @file
 * The host-visible block I/O command set. This is the trust boundary
 * of the paper's threat model: everything above it (OS, processes,
 * ransomware) is untrusted; everything below (FTL, logging, NVMe-oE)
 * is trusted firmware.
 */

#ifndef RSSD_NVME_COMMAND_HH
#define RSSD_NVME_COMMAND_HH

#include <cstdint>
#include <vector>

#include "flash/geometry.hh"
#include "sim/units.hh"

namespace rssd::nvme {

using flash::Lpa;

/** Block command opcodes (the subset the paper's attacks exercise). */
enum class Opcode : std::uint8_t {
    Read,
    Write,
    Trim,
    Flush,
};

const char *opcodeName(Opcode op);

/** One host command, page-granular addressing. */
struct Command
{
    Opcode op = Opcode::Flush;
    Lpa lpa = 0;               ///< first logical page
    std::uint32_t npages = 0;  ///< page count (0 ok for Flush)
    /**
     * Write payload: npages * pageSize bytes, or empty for
     * address-only simulation.
     */
    std::vector<std::uint8_t> data;
};

/** Completion status visible to the host. */
enum class HostStatus : std::uint8_t {
    Success,
    DeviceFull,   ///< retention backpressure could not be resolved
    InvalidField, ///< address out of range
};

/** Completion record. */
struct Completion
{
    HostStatus status = HostStatus::Success;
    Tick submittedAt = 0;
    Tick completedAt = 0;
    /** Read payload (npages * pageSize), zero-filled for unmapped. */
    std::vector<std::uint8_t> data;

    bool ok() const { return status == HostStatus::Success; }
    Tick latency() const { return completedAt - submittedAt; }
};

/**
 * Abstract block device — the interface examples, workloads and
 * attacks program against. Implementations: the baseline LocalSSD
 * (ftl::PageMappedFtl behind a thin adapter), every baseline defense
 * wrapper, and core::RssdDevice.
 */
class BlockDevice
{
  public:
    virtual ~BlockDevice() = default;

    /** Submit one command at the current simulated time. */
    virtual Completion submit(const Command &cmd) = 0;

    /** Exported capacity in logical pages. */
    virtual std::uint64_t capacityPages() const = 0;

    /** Logical page size in bytes. */
    virtual std::uint32_t pageSize() const = 0;

    // Convenience wrappers -------------------------------------------------

    Completion writePage(Lpa lpa, const std::vector<std::uint8_t> &data);
    Completion readPage(Lpa lpa);
    Completion trimPage(Lpa lpa);
};

} // namespace rssd::nvme

#endif // RSSD_NVME_COMMAND_HH
