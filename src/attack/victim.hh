/**
 * @file
 * The victim dataset: user files on the device whose fate the
 * Table 1 experiments measure.
 *
 * Populates a range of LBAs with realistic low-entropy content and
 * remembers the plaintext out-of-band (the experimenter's ground
 * truth, not something any defense can see). After an attack and a
 * recovery attempt, verifyIntact() reads every victim page back and
 * reports the surviving fraction.
 */

#ifndef RSSD_ATTACK_VICTIM_HH
#define RSSD_ATTACK_VICTIM_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "compress/datagen.hh"
#include "nvme/command.hh"
#include "sim/rng.hh"

namespace rssd::attack {

using flash::Lpa;

class VictimDataset
{
  public:
    /**
     * @param first_lpa        start of the victim range
     * @param pages            number of victim pages
     * @param compressibility  victim content redundancy (user data
     *                         is compressible; ~0.7 gives ~4-5 bits
     *                         per byte of entropy)
     */
    VictimDataset(Lpa first_lpa, std::uint32_t pages,
                  double compressibility = 0.7,
                  std::uint64_t seed = 0x51C71);

    /** Write the dataset onto @p device. */
    void populate(nvme::BlockDevice &device);

    /** Ground-truth plaintext of a victim page. */
    const std::vector<std::uint8_t> &plaintextOf(Lpa lpa) const;

    /** Fraction of victim pages currently intact on @p device. */
    double intactFraction(nvme::BlockDevice &device) const;

    Lpa firstLpa() const { return first_; }
    std::uint32_t pages() const { return count_; }

  private:
    Lpa first_;
    std::uint32_t count_;
    std::unordered_map<Lpa, std::vector<std::uint8_t>> plaintext_;
    double compressibility_;
    std::uint64_t seed_;
};

} // namespace rssd::attack

#endif // RSSD_ATTACK_VICTIM_HH
