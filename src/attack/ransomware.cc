#include "attack/ransomware.hh"

#include <algorithm>

#include "compress/datagen.hh"
#include "sim/logging.hh"

namespace rssd::attack {

Ransomware::Ransomware(const AttackConfig &config)
    : config_(config),
      key_(crypto::ChaCha20::deriveKey(config.attackerKeySeed)),
      rng_(config.rngSeed)
{
}

std::vector<std::uint8_t>
Ransomware::encryptPage(const std::vector<std::uint8_t> &plain,
                        Lpa lpa) const
{
    std::vector<std::uint8_t> cipher = plain;
    crypto::ChaCha20 c(key_, crypto::ChaCha20::nonceFromSequence(lpa));
    c.apply(cipher);
    return cipher;
}

void
Ransomware::encryptInPlace(nvme::BlockDevice &device, Lpa lpa,
                           AttackReport &report) const
{
    const nvme::Completion read = device.readPage(lpa);
    if (!read.ok())
        return;
    const nvme::Completion write =
        device.writePage(lpa, encryptPage(read.data, lpa));
    if (write.ok())
        report.pagesEncrypted++;
    else
        report.writeErrors++;
}

// ---------------------------------------------------------------------
// ClassicRansomware
// ---------------------------------------------------------------------

AttackReport
ClassicRansomware::run(nvme::BlockDevice &device, VirtualClock &clock,
                       const VictimDataset &victim)
{
    AttackReport report;
    report.attack = name();
    report.startedAt = clock.now();
    for (std::uint32_t i = 0; i < victim.pages(); i++)
        encryptInPlace(device, victim.firstLpa() + i, report);
    report.finishedAt = clock.now();
    return report;
}

// ---------------------------------------------------------------------
// GcAttack
// ---------------------------------------------------------------------

GcAttack::GcAttack(const Params &params, const AttackConfig &config)
    : Ransomware(config), params_(params)
{
}

AttackReport
GcAttack::run(nvme::BlockDevice &device, VirtualClock &clock,
              const VictimDataset &victim)
{
    AttackReport report;
    report.attack = name();
    report.startedAt = clock.now();

    // Phase 1: encrypt the victims (creates retained stale pages on
    // defended devices).
    for (std::uint32_t i = 0; i < victim.pages(); i++)
        encryptInPlace(device, victim.firstLpa() + i, report);

    // Phase 2: flood. Overwrite a large LBA span with incompressible
    // junk, several times device capacity, forcing GC to hunt for
    // garbage. On a conventional defense, the retained victim
    // plaintext is exactly the garbage GC erases.
    const std::uint64_t capacity = device.capacityPages();
    const std::uint64_t span = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(capacity) *
               params_.floodSpanFraction));
    const std::uint64_t flood_pages = static_cast<std::uint64_t>(
        static_cast<double>(capacity) *
        params_.floodCapacityMultiple);
    const Lpa flood_base = capacity - span;

    compress::DataGenerator junkgen(rng_.next(), 0.0);
    const std::uint32_t page_size = device.pageSize();
    for (std::uint64_t i = 0; i < flood_pages; i++) {
        const Lpa lpa = flood_base + (i % span);
        const nvme::Completion comp =
            device.writePage(lpa, junkgen.page(page_size));
        if (comp.ok())
            report.junkPagesWritten++;
        else
            report.writeErrors++;
    }

    report.finishedAt = clock.now();
    return report;
}

// ---------------------------------------------------------------------
// TimingAttack
// ---------------------------------------------------------------------

TimingAttack::TimingAttack(const Params &params,
                           const AttackConfig &config)
    : Ransomware(config), params_(params)
{
}

AttackReport
TimingAttack::run(nvme::BlockDevice &device, VirtualClock &clock,
                  const VictimDataset &victim)
{
    AttackReport report;
    report.attack = name();
    report.startedAt = clock.now();

    const std::uint64_t capacity = device.capacityPages();
    const std::uint64_t benign_span = std::max<std::uint64_t>(
        64, static_cast<std::uint64_t>(
                static_cast<double>(capacity) *
                params_.benignSpanFraction));
    const Lpa benign_base =
        std::min<Lpa>(victim.firstLpa() + victim.pages(),
                      capacity - benign_span);

    compress::DataGenerator benigngen(rng_.next(), 0.7);
    const std::uint32_t page_size = device.pageSize();

    for (std::uint32_t i = 0; i < victim.pages(); i++) {
        // Encrypt one page...
        encryptInPlace(device, victim.firstLpa() + i, report);

        // ...then hide behind benign-looking traffic and real time.
        for (std::uint32_t b = 0; b < params_.benignOpsPerEncrypt;
             b++) {
            const Lpa lpa = benign_base + rng_.below(benign_span);
            if (rng_.chance(0.6)) {
                device.readPage(lpa);
            } else {
                device.writePage(lpa, benigngen.page(page_size));
            }
            report.benignOpsIssued++;
        }
        clock.advance(params_.encryptionInterval);
    }

    report.finishedAt = clock.now();
    return report;
}

// ---------------------------------------------------------------------
// TrimmingAttack
// ---------------------------------------------------------------------

TrimmingAttack::TrimmingAttack(const Params &params,
                               const AttackConfig &config)
    : Ransomware(config), params_(params)
{
}

AttackReport
TrimmingAttack::run(nvme::BlockDevice &device, VirtualClock &clock,
                    const VictimDataset &victim)
{
    AttackReport report;
    report.attack = name();
    report.startedAt = clock.now();

    const std::uint64_t capacity = device.capacityPages();
    Lpa drop_site = static_cast<Lpa>(
        static_cast<double>(capacity) * params_.dropSiteFraction);
    panicIf(drop_site + victim.pages() > capacity,
            "trimming attack: drop site out of range");

    for (std::uint32_t i = 0; i < victim.pages(); i++) {
        const Lpa lpa = victim.firstLpa() + i;
        const nvme::Completion read = device.readPage(lpa);
        if (!read.ok())
            continue;
        // Ciphertext copy lands elsewhere (the ransom hostage)...
        const nvme::Completion write = device.writePage(
            drop_site + i, encryptPage(read.data, lpa));
        if (write.ok())
            report.pagesEncrypted++;
        else
            report.writeErrors++;
        // ...and the original is trimmed away.
        const nvme::Completion trim = device.trimPage(lpa);
        if (trim.ok())
            report.pagesTrimmed++;
    }

    report.finishedAt = clock.now();
    return report;
}

} // namespace rssd::attack
