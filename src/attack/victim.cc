#include "attack/victim.hh"

#include "sim/logging.hh"

namespace rssd::attack {

VictimDataset::VictimDataset(Lpa first_lpa, std::uint32_t pages,
                             double compressibility, std::uint64_t seed)
    : first_(first_lpa),
      count_(pages),
      compressibility_(compressibility),
      seed_(seed)
{
}

void
VictimDataset::populate(nvme::BlockDevice &device)
{
    compress::DataGenerator gen(seed_, compressibility_);
    const std::uint32_t page_size = device.pageSize();
    panicIf(first_ + count_ > device.capacityPages(),
            "victim dataset exceeds device capacity");
    for (std::uint32_t i = 0; i < count_; i++) {
        const Lpa lpa = first_ + i;
        std::vector<std::uint8_t> content = gen.page(page_size);
        const nvme::Completion comp = device.writePage(lpa, content);
        panicIf(!comp.ok(), "victim populate write failed");
        plaintext_[lpa] = std::move(content);
    }
}

const std::vector<std::uint8_t> &
VictimDataset::plaintextOf(Lpa lpa) const
{
    const auto it = plaintext_.find(lpa);
    panicIf(it == plaintext_.end(), "plaintextOf: not a victim page");
    return it->second;
}

double
VictimDataset::intactFraction(nvme::BlockDevice &device) const
{
    if (count_ == 0)
        return 1.0;
    std::uint32_t intact = 0;
    for (std::uint32_t i = 0; i < count_; i++) {
        const Lpa lpa = first_ + i;
        const nvme::Completion comp = device.readPage(lpa);
        if (comp.ok() && comp.data == plaintext_.at(lpa))
            intact++;
    }
    return static_cast<double>(intact) / static_cast<double>(count_);
}

} // namespace rssd::attack
