/**
 * @file
 * Ransomware attack models (paper §3, "Ransomware 2.0").
 *
 * Every attack drives the device strictly through the host block
 * interface — the same trust boundary real ransomware has after
 * privilege escalation. Encryption is real (ChaCha20 with an
 * attacker-held key), so content entropy statistics match genuine
 * ciphertext.
 *
 * Models:
 *  - ClassicRansomware: read -> encrypt -> overwrite, fast.
 *  - GcAttack: classic, then floods the device with junk writes to
 *    force garbage collection to erase retained victim data.
 *  - TimingAttack: classic spread over hours, diluted with benign
 *    I/O so windowed detectors never trip.
 *  - TrimmingAttack: writes ciphertext to fresh LBAs and TRIMs the
 *    originals, physically erasing them on a conventional SSD.
 */

#ifndef RSSD_ATTACK_RANSOMWARE_HH
#define RSSD_ATTACK_RANSOMWARE_HH

#include <cstdint>
#include <string>

#include "attack/victim.hh"
#include "crypto/chacha20.hh"
#include "nvme/command.hh"
#include "sim/clock.hh"
#include "sim/rng.hh"

namespace rssd::attack {

/** What an attack did (experiment ground truth). */
struct AttackReport
{
    std::string attack;
    std::uint64_t pagesEncrypted = 0;
    std::uint64_t pagesTrimmed = 0;
    std::uint64_t junkPagesWritten = 0;
    std::uint64_t benignOpsIssued = 0;
    std::uint64_t writeErrors = 0;
    Tick startedAt = 0;
    Tick finishedAt = 0;
};

/** Common knobs. */
struct AttackConfig
{
    std::string attackerKeySeed = "r4ns0m-key";
    std::uint64_t rngSeed = 0xA77AC4;
};

/** Base class: owns the attacker cipher and helpers. */
class Ransomware
{
  public:
    explicit Ransomware(const AttackConfig &config = AttackConfig());
    virtual ~Ransomware() = default;

    virtual const char *name() const = 0;

    /**
     * Execute the attack against @p device, encrypting @p victim.
     * @p clock is the experiment clock (attacks pace themselves).
     */
    virtual AttackReport run(nvme::BlockDevice &device,
                             VirtualClock &clock,
                             const VictimDataset &victim) = 0;

  protected:
    /** Encrypt one page's plaintext with the attacker key. */
    std::vector<std::uint8_t>
    encryptPage(const std::vector<std::uint8_t> &plain, Lpa lpa) const;

    /** read->encrypt->overwrite one victim page. */
    void encryptInPlace(nvme::BlockDevice &device, Lpa lpa,
                        AttackReport &report) const;

    AttackConfig config_;
    crypto::Key256 key_;
    mutable Rng rng_;
};

/** Fast in-place encryptor (the pre-SSD-era baseline ransomware). */
class ClassicRansomware : public Ransomware
{
  public:
    using Ransomware::Ransomware;
    const char *name() const override { return "classic"; }
    AttackReport run(nvme::BlockDevice &device, VirtualClock &clock,
                     const VictimDataset &victim) override;
};

/** Classic + capacity flood to force GC to erase retained data. */
class GcAttack : public Ransomware
{
  public:
    struct Params
    {
        /** Junk written as a multiple of device capacity. */
        double floodCapacityMultiple = 2.0;
        /** LBA span used for flooding (fraction of device). */
        double floodSpanFraction = 0.5;
    };

    GcAttack() : GcAttack(Params()) {}
    explicit GcAttack(const Params &params,
                      const AttackConfig &config = AttackConfig());
    const char *name() const override { return "gc-attack"; }
    AttackReport run(nvme::BlockDevice &device, VirtualClock &clock,
                     const VictimDataset &victim) override;

  private:
    Params params_;
};

/** Slow encryptor hidden inside benign traffic. */
class TimingAttack : public Ransomware
{
  public:
    struct Params
    {
        /** Gap between victim-page encryptions. */
        Tick encryptionInterval = 2 * units::SEC;
        /** Benign ops issued between encryptions (dilution). */
        std::uint32_t benignOpsPerEncrypt = 64;
        /** LBA region used for benign cover traffic. */
        double benignSpanFraction = 0.25;
    };

    TimingAttack() : TimingAttack(Params()) {}
    explicit TimingAttack(const Params &params,
                          const AttackConfig &config = AttackConfig());
    const char *name() const override { return "timing-attack"; }
    AttackReport run(nvme::BlockDevice &device, VirtualClock &clock,
                     const VictimDataset &victim) override;

  private:
    Params params_;
};

/** Write ciphertext elsewhere, then TRIM the original pages. */
class TrimmingAttack : public Ransomware
{
  public:
    struct Params
    {
        /** Where the ciphertext copies land (fraction of device). */
        double dropSiteFraction = 0.75;
    };

    TrimmingAttack() : TrimmingAttack(Params()) {}
    explicit TrimmingAttack(const Params &params,
                            const AttackConfig &config = AttackConfig());
    const char *name() const override { return "trimming-attack"; }
    AttackReport run(nvme::BlockDevice &device, VirtualClock &clock,
                     const VictimDataset &victim) override;

  private:
    Params params_;
};

} // namespace rssd::attack

#endif // RSSD_ATTACK_RANSOMWARE_HH
