#!/usr/bin/env python3
"""Compare two RSSD_BENCH_JSON result files (JSON-Lines).

Each line is one bench record:

    {"bench":"offload_path",
     "meta":{"build":"Release","native":1,"smoke":1},
     "config":{"link_gbps":"25","content":"typical"},
     "metrics":{"offload_MiBps":812.4,"wire_MiBps":433.1}}

Records are keyed by (bench, config); metrics are compared pairwise
between the baseline and the candidate file. The direction of
"better" is inferred from the metric name: time-like metrics
(`*_ns`, `*_us`, `*_ms`, `*_s`, `*time*`, `*latency*`) regress when
they grow, everything else (throughputs, rates, counts of useful
work) regresses when it shrinks.

Exit codes:
    0  no regression beyond --fail (or --warn-only)
    1  at least one metric regressed by more than --fail
    2  input malformed / nothing to compare

CI runs this warn-only against bench/baseline.jsonl — the numbers in
that file come from one developer machine and a shared runner is
noisy, so the comparison annotates the log rather than gating the
merge. Use --fail locally when you want a hard gate (e.g. before and
after a perf patch on the same quiet machine).

Usage:
    tools/bench_compare.py baseline.jsonl candidate.jsonl
        [--warn 0.10] [--fail 0.25] [--warn-only]
"""

import argparse
import json
import sys

TIME_LIKE = ("_ns", "_us", "_ms", "_s")


def lower_is_better(metric):
    name = metric.lower()
    if "time" in name or "latency" in name:
        return True
    return any(name.endswith(suffix) for suffix in TIME_LIKE)


def load(path):
    """-> {(bench, frozen config): {metric: value}}, meta of last row."""
    records = {}
    meta = {}
    try:
        with open(path, "r", encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as e:
                    print(f"{path}:{lineno}: bad JSON: {e}",
                          file=sys.stderr)
                    sys.exit(2)
                key = (row.get("bench", "?"),
                       tuple(sorted(row.get("config", {}).items())))
                # Last write wins: a re-run bench supersedes itself.
                records[key] = {
                    k: v for k, v in row.get("metrics", {}).items()
                    if isinstance(v, (int, float))
                }
                meta = row.get("meta", {})
    except OSError as e:
        print(f"cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    return records, meta


def describe(key):
    bench, config = key
    if not config:
        return bench
    return bench + "[" + ",".join(f"{k}={v}" for k, v in config) + "]"


def main():
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--warn", type=float, default=0.10,
                    help="relative regression to warn at "
                         "(default 0.10 = 10%%)")
    ap.add_argument("--fail", type=float, default=0.25,
                    help="relative regression to fail at "
                         "(default 0.25 = 25%%)")
    ap.add_argument("--warn-only", action="store_true",
                    help="always exit 0 (CI annotation mode)")
    args = ap.parse_args()

    base, base_meta = load(args.baseline)
    cand, cand_meta = load(args.candidate)
    if not base or not cand:
        print("nothing to compare (empty input)", file=sys.stderr)
        sys.exit(2)
    if base_meta != cand_meta:
        print(f"note: meta differs (baseline {base_meta}, "
              f"candidate {cand_meta}) — absolute numbers are not "
              f"comparable across build types/machines")

    warns = fails = improved = compared = 0
    for key in sorted(base):
        if key not in cand:
            print(f"MISSING  {describe(key)}: not in candidate")
            continue
        for metric, old in sorted(base[key].items()):
            new = cand[key].get(metric)
            if new is None:
                print(f"MISSING  {describe(key)}.{metric}")
                continue
            compared += 1
            if old == 0:
                continue  # no meaningful relative delta
            delta = (new - old) / abs(old)
            regression = delta if lower_is_better(metric) else -delta
            tag = "ok"
            if regression >= args.fail:
                tag, fails = "FAIL", fails + 1
            elif regression >= args.warn:
                tag, warns = "WARN", warns + 1
            elif regression <= -args.warn:
                tag, improved = "better", improved + 1
            if tag != "ok":
                print(f"{tag:7s}  {describe(key)}.{metric}: "
                      f"{old:g} -> {new:g} ({delta:+.1%})")

    new_keys = sorted(set(cand) - set(base))
    for key in new_keys:
        print(f"NEW      {describe(key)}: no baseline")

    print(f"compared {compared} metrics: {fails} fail, {warns} warn, "
          f"{improved} improved "
          f"(thresholds: warn {args.warn:.0%}, fail {args.fail:.0%})")
    if fails and not args.warn_only:
        sys.exit(1)
    sys.exit(0)


if __name__ == "__main__":
    main()
