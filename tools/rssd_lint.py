#!/usr/bin/env python3
"""rssd_lint — RSSD's project-specific determinism linter.

Every load-bearing guarantee in this repo (byte-identical reports
under golden digests, chain custody confined to one re-anchoring
primitive, schema constants bumped in lockstep with report layout)
is a *static* property of the source: you can see the violation in
the diff long before a runtime test catches it. This tool encodes
those invariants as named, suppressible rules:

  D1  no nondeterminism sources in product code (wall clocks,
      rand(), random_device, getenv) outside annotated exceptions
  D2  no iteration over std::unordered_{map,set} in a translation
      unit that emits via sim::JsonWriter, obs::TraceSink, or the
      bench JSON-Lines writer (unordered iteration order is the
      classic way to break a golden digest)
  D3  schema manifests: the set of literal j.key("...") strings per
      report TU is pinned in tools/manifests/*.keys together with
      the TU's k*Schema constant; changing the key set without
      bumping the constant fails, and any drift fails until
      --fix-manifests re-pins it
  C1  chain-custody locality: resumeFrom / sealPrune / verifyPrune /
      adoptPruneRecord are referenced only from allowlisted files —
      the "ONE re-anchoring primitive" rule
  P1  panicIf(cond, <string-building expression>) in hot-path files:
      the message argument is evaluated unconditionally, so a
      concatenation or std::to_string heap-allocates on every call

Suppression: append `// rssd-lint: allow(RULE) <reason>` to the
offending line, or put `// rssd-lint: allow-next-line(RULE) <reason>`
on the line above.  A reason is mandatory; an annotation without one
is itself a finding (rule LINT).

Engine: uses libclang tokenization when the python bindings and a
libclang shared object are importable, and a built-in C++ tokenizer
otherwise — same rules either way, so CI can never silently skip.

Exit codes: 0 clean, 1 findings (or manifest drift), 2 usage/internal
error.
"""

import argparse
import json
import os
import re
import sys

# --------------------------------------------------------------------------
# Configuration: the invariant catalog.
# --------------------------------------------------------------------------

# Directories scanned relative to the repo root, and the "area" label
# each file gets (rules scope themselves by area).
SCAN_DIRS = ("src", "tests", "bench", "examples")
SOURCE_EXTS = (".cc", ".hh", ".cpp", ".hpp", ".h")

# Deliberately-bad linter inputs live here; never scan them as part
# of the tree (the fixture suite runs them through --root sandboxes).
EXCLUDE_PREFIXES = ("tests/tools/fixtures",)

# D1: identifiers that read ambient nondeterminism. "call-only" names
# are flagged only when used as a function call (`time(...)`) to keep
# common member/variable names quiet.
D1_BANNED_IDENTS = {
    "system_clock", "high_resolution_clock", "steady_clock",
    "random_device", "gettimeofday", "clock_gettime", "localtime",
    "gmtime", "getenv", "srand", "rand_r", "drand48",
}
D1_CALL_ONLY_IDENTS = {"time", "rand"}
# Only flagged when spelled std::clock — the sim's own clock()
# accessors (VirtualClock &clock()) are everywhere and sound.
D1_STD_QUALIFIED_ONLY = {"clock"}
# Product code plus the deterministic sim drivers; benches may keep
# wall clocks for measurement but must annotate them so every
# nondeterminism source in the tree carries a stated reason.
D1_AREAS = {"src", "examples", "bench"}

# D2: a file is an emission TU if it mentions any of these emitters.
D2_EMITTER_IDENTS = {"JsonWriter", "TraceSink", "JsonReport"}
D2_UNORDERED_TYPES = {"unordered_map", "unordered_set"}

# D3: report translation units whose literal key set + schema
# constant are pinned by a committed manifest.
D3_SPECS = (
    {
        "name": "fleet_report",
        "tu": "src/fleet/report.cc",
        "header": "src/fleet/report.hh",
        "constant": "kFleetReportSchema",
    },
    {
        "name": "forensics_report",
        "tu": "src/forensics/report.cc",
        "header": "src/forensics/report.hh",
        "constant": "kForensicsReportSchema",
    },
    {
        "name": "obs_timeseries",
        "tu": "src/obs/timeseries.cc",
        "header": "src/obs/timeseries.hh",
        "constant": "kTimeSeriesSchema",
    },
    {
        "name": "obs_metrics",
        "tu": "src/obs/metrics.cc",
        "header": "src/obs/metrics.hh",
        "constant": "kMetricsSnapshotSchema",
    },
)
MANIFEST_DIR = "tools/manifests"

# C1: custody symbols and the only files allowed to reference them.
# Scope: src/ — tests exercise the primitives directly by design.
C1_CUSTODY = {
    "resumeFrom": {
        "src/log/chain_verify.hh", "src/log/chain_verify.cc",
        "src/remote/backup_store.cc", "src/core/history.cc",
        "src/forensics/evidence.cc",
    },
    "sealPrune": {
        "src/log/segment.hh", "src/log/segment.cc",
        "src/remote/backup_store.cc",
    },
    "verifyPrune": {
        "src/log/segment.hh", "src/log/segment.cc",
        "src/log/chain_verify.cc", "src/remote/backup_store.cc",
    },
    "adoptPruneRecord": {
        "src/remote/backup_store.hh", "src/remote/backup_store.cc",
        "src/remote/backup_cluster.cc",
    },
    "adoptPruneRecordOn": {
        "src/remote/backup_cluster.hh", "src/remote/backup_cluster.cc",
        "src/remote/repair_engine.cc",
    },
}

# P1: hot-path prefixes where a panicIf message must not allocate.
P1_HOT_PREFIXES = (
    "src/compress/", "src/crypto/", "src/flash/", "src/ftl/",
    "src/log/",
)

RULES = {
    "D1": "nondeterminism source (wall clock / rand / getenv) in "
          "product code",
    "D2": "iteration over std::unordered_{map,set} in a JSON/trace "
          "emission TU",
    "D3": "report key set changed without a schema-constant bump "
          "(manifest drift)",
    "C1": "chain-custody primitive referenced outside its allowlist",
    "P1": "panicIf message builds a std::string temporary in a hot "
          "path",
    "LINT": "malformed rssd-lint annotation (unknown rule or missing "
            "reason)",
}

# --------------------------------------------------------------------------
# Tokenization. The fallback tokenizer understands comments, string /
# char / raw-string literals, identifiers, numbers, and single-char
# punctuation — exactly enough for the rules above.
# --------------------------------------------------------------------------

ANNOT_RE = re.compile(
    r"rssd-lint:\s*allow(?P<next>-next-line)?\s*"
    r"\(\s*(?P<rules>[A-Za-z0-9_,\s]*)\)\s*(?P<reason>.*)")

IDENT_START = set("abcdefghijklmnopqrstuvwxyz"
                  "ABCDEFGHIJKLMNOPQRSTUVWXYZ_")
IDENT_CONT = IDENT_START | set("0123456789")


class Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind  # 'ident' | 'string' | 'char' | 'num' | 'punct'
        self.text = text
        self.line = line

    def __repr__(self):
        return f"{self.kind}:{self.text!r}@{self.line}"


class Annotation:
    __slots__ = ("line", "rules", "reason", "raw_line")

    def __init__(self, line, rules, reason, raw_line):
        self.line = line        # line the annotation applies to
        self.rules = rules      # set of rule ids (may be empty = bad)
        self.reason = reason
        self.raw_line = raw_line  # line the comment sits on


def tokenize_fallback(text):
    """Tokenize C++ source; returns (tokens, annotations)."""
    tokens = []
    annots = []
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
        elif c in " \t\r\f\v":
            i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j < 0:
                j = n
            comment = text[i:j]
            m = ANNOT_RE.search(comment)
            if m:
                rules = {r.strip() for r in m.group("rules").split(",")
                         if r.strip()}
                target = line + 1 if m.group("next") else line
                annots.append(Annotation(target, rules,
                                         m.group("reason").strip(), line))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            if j < 0:
                j = n
            else:
                j += 2
            line += text.count("\n", i, j)
            i = j
        elif c == "R" and text[i:i + 2] == 'R"':
            # Raw string literal R"delim( ... )delim"
            m = re.match(r'R"([^(\s]*)\(', text[i:])
            if m:
                close = ")" + m.group(1) + '"'
                j = text.find(close, i + m.end())
                j = n if j < 0 else j + len(close)
                tokens.append(Token("string", text[i:j], line))
                line += text.count("\n", i, j)
                i = j
            else:
                tokens.append(Token("ident", _ident_at(text, i), line))
                i += len(tokens[-1].text)
        elif c == '"' or c == "'":
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == c or text[j] == "\n":
                    break
                j += 1
            j = min(j + 1, n)
            kind = "string" if c == '"' else "char"
            tokens.append(Token(kind, text[i:j], line))
            i = j
        elif c in IDENT_START:
            ident = _ident_at(text, i)
            tokens.append(Token("ident", ident, line))
            i += len(ident)
        elif c.isdigit():
            j = i
            while j < n and (text[j] in IDENT_CONT or text[j] == "."
                             or (text[j] in "+-"
                                 and text[j - 1] in "eEpP")):
                j += 1
            tokens.append(Token("num", text[i:j], line))
            i = j
        else:
            tokens.append(Token("punct", c, line))
            i += 1
    return tokens, annots


def _ident_at(text, i):
    j = i
    while j < len(text) and text[j] in IDENT_CONT:
        j += 1
    return text[i:j]


def _try_libclang():
    try:
        from clang import cindex  # noqa: F401
        idx = cindex.Index.create()
        return idx, cindex
    except Exception:
        return None, None


_LIBCLANG_INDEX, _CINDEX = _try_libclang()
ENGINE = "libclang" if _LIBCLANG_INDEX is not None else "tokenizer"


def tokenize_libclang(path, text):
    """Tokenize via libclang (single-file, no includes needed for a
    pure token stream). Annotations still come from the fallback
    scanner, which is authoritative for comments."""
    tu = _CINDEX.TranslationUnit.from_source(
        path, args=["-std=c++20", "-fsyntax-only"],
        unsaved_files=[(path, text)],
        options=_CINDEX.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
    tokens = []
    kind_map = {
        _CINDEX.TokenKind.IDENTIFIER: "ident",
        _CINDEX.TokenKind.KEYWORD: "ident",
        _CINDEX.TokenKind.LITERAL: "num",
        _CINDEX.TokenKind.PUNCTUATION: "punct",
    }
    for t in tu.cursor.translation_unit.get_tokens(
            extent=tu.cursor.extent):
        kind = kind_map.get(t.kind)
        if kind is None:
            continue  # comments handled by the fallback scanner
        text_ = t.spelling
        if kind == "num" and text_[:1] in "\"'R":
            kind = "string" if text_[:1] != "'" else "char"
        if kind == "punct" and len(text_) > 1:
            # The rules reason over single-char punctuation.
            for k, ch in enumerate(text_):
                tokens.append(Token("punct", ch, t.location.line))
            continue
        tokens.append(Token(kind, text_, t.location.line))
    return tokens


def tokenize(path, text):
    _, annots = tokenize_fallback(text)
    if _LIBCLANG_INDEX is not None:
        try:
            return tokenize_libclang(path, text), annots
        except Exception:
            pass
    tokens, _ = tokenize_fallback(text)
    return tokens, annots


# --------------------------------------------------------------------------
# Findings and suppression.
# --------------------------------------------------------------------------

class Finding:
    __slots__ = ("rule", "file", "line", "message", "suppressed",
                 "reason")

    def __init__(self, rule, file, line, message):
        self.rule = rule
        self.file = file
        self.line = line
        self.message = message
        self.suppressed = False
        self.reason = None

    def as_dict(self):
        d = {"rule": self.rule, "file": self.file, "line": self.line,
             "message": self.message, "suppressed": self.suppressed}
        if self.reason:
            d["reason"] = self.reason
        return d


class FileContext:
    def __init__(self, root, relpath):
        self.relpath = relpath
        self.area = relpath.split("/", 1)[0]
        with open(os.path.join(root, relpath), "r",
                  encoding="utf-8", errors="replace") as f:
            self.text = f.read()
        self.tokens, self.annotations = tokenize(relpath, self.text)
        self.allow = {}  # line -> {rule: reason}
        for a in self.annotations:
            for r in a.rules:
                self.allow.setdefault(a.line, {})[r] = a.reason


def check_annotations(ctx):
    """Rule LINT: every annotation must name known rules and carry a
    reason. Fires on the comment's own line and cannot be
    suppressed."""
    out = []
    for a in ctx.annotations:
        unknown = sorted(r for r in a.rules if r not in RULES)
        if not a.rules:
            out.append(Finding("LINT", ctx.relpath, a.raw_line,
                               "annotation names no rule"))
        if unknown:
            out.append(Finding("LINT", ctx.relpath, a.raw_line,
                               "annotation names unknown rule(s): "
                               + ", ".join(unknown)))
        if not a.reason:
            out.append(Finding("LINT", ctx.relpath, a.raw_line,
                               "annotation is missing a reason — say "
                               "why the exception is sound"))
    return out


# --------------------------------------------------------------------------
# Rule D1 — nondeterminism sources.
# --------------------------------------------------------------------------

def check_d1(ctx):
    if ctx.area not in D1_AREAS:
        return []
    out = []
    toks = ctx.tokens
    for i, t in enumerate(toks):
        if t.kind != "ident":
            continue
        name = t.text
        flagged = False
        if name in D1_BANNED_IDENTS:
            flagged = True
        elif name in D1_STD_QUALIFIED_ONLY:
            if i >= 3 and toks[i - 1].text == ":" \
                    and toks[i - 2].text == ":" \
                    and toks[i - 3].text == "std":
                flagged = True
        elif name in D1_CALL_ONLY_IDENTS:
            nxt = toks[i + 1] if i + 1 < len(toks) else None
            prv = toks[i - 1] if i > 0 else None
            is_call = nxt is not None and nxt.kind == "punct" \
                and nxt.text == "("
            member = prv is not None and prv.kind == "punct" \
                and prv.text in {".", ">"}  # ".time(" / "->time("
            if is_call and not member:
                # `std::time(` is banned; `foo::time(` (a project
                # type's member) is not.
                qualifier = None
                if i >= 3 and toks[i - 1].text == ":" \
                        and toks[i - 2].text == ":":
                    qualifier = toks[i - 3].text
                if qualifier is None or qualifier == "std":
                    flagged = True
        if flagged:
            out.append(Finding(
                "D1", ctx.relpath, t.line,
                f"nondeterminism source `{name}` — sim time comes "
                "from sim::Clock, randomness from sim::Rng, config "
                "from flags; if this use is sound, annotate it"))
    return out


# --------------------------------------------------------------------------
# Rule D2 — unordered iteration in emission TUs.
# --------------------------------------------------------------------------

def _unordered_decl_names(toks):
    """Names of variables/members declared with an unordered type."""
    names = set()
    i = 0
    while i < len(toks):
        t = toks[i]
        if t.kind == "ident" and t.text in D2_UNORDERED_TYPES:
            j = i + 1
            if j < len(toks) and toks[j].kind == "punct" \
                    and toks[j].text == "<":
                depth = 0
                while j < len(toks):
                    if toks[j].kind == "punct":
                        if toks[j].text == "<":
                            depth += 1
                        elif toks[j].text == ">":
                            depth -= 1
                            if depth == 0:
                                j += 1
                                break
                    j += 1
            if j < len(toks) and toks[j].kind == "ident":
                names.add(toks[j].text)
        i += 1
    return names


def check_d2(ctx):
    toks = ctx.tokens
    idents = {t.text for t in toks if t.kind == "ident"}
    if not (idents & D2_EMITTER_IDENTS):
        return []
    unordered = _unordered_decl_names(toks)
    if not unordered:
        return []
    out = []
    n = len(toks)
    for i, t in enumerate(toks):
        # Range-for over an unordered name:
        #   for ( <decl> : <expr-with-unordered-name> )
        if t.kind == "ident" and t.text == "for" and i + 1 < n \
                and toks[i + 1].text == "(":
            depth, j, colon = 0, i + 1, None
            while j < n:
                tj = toks[j]
                if tj.kind == "punct":
                    if tj.text == "(":
                        depth += 1
                    elif tj.text == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    elif tj.text == ":" and depth == 1 and colon is None:
                        prev_colon = toks[j - 1].text == ":"
                        next_colon = j + 1 < n and toks[j + 1].text == ":"
                        if not prev_colon and not next_colon:
                            colon = j
                j += 1
            if colon is not None:
                ranged = {tk.text for tk in toks[colon + 1:j]
                          if tk.kind == "ident"}
                hit = sorted(ranged & unordered)
                if hit:
                    out.append(Finding(
                        "D2", ctx.relpath, t.line,
                        f"range-for over unordered container "
                        f"`{hit[0]}` in an emission TU — iteration "
                        "order is unspecified and will break golden "
                        "digests; copy into a sorted container first"))
        # Explicit iterator walks: name.begin() / name.cbegin()
        if t.kind == "ident" and t.text in unordered and i + 2 < n \
                and toks[i + 1].kind == "punct" \
                and toks[i + 1].text == "." \
                and toks[i + 2].kind == "ident" \
                and toks[i + 2].text in {"begin", "cbegin"}:
            out.append(Finding(
                "D2", ctx.relpath, t.line,
                f"iterator walk over unordered container `{t.text}` "
                "in an emission TU — iteration order is unspecified"))
    return out


# --------------------------------------------------------------------------
# Rule D3 — schema manifests.
# --------------------------------------------------------------------------

def _extract_keys(toks):
    """Literal arguments of j.key("...") calls, plus a count of
    dynamic (non-literal) key() call sites."""
    keys, dynamic = set(), 0
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind == "ident" and t.text == "key" and i >= 1 \
                and toks[i - 1].kind == "punct" \
                and toks[i - 1].text == "." \
                and i + 1 < n and toks[i + 1].text == "(":
            if i + 2 < n and toks[i + 2].kind == "string":
                keys.add(_string_value(toks[i + 2].text))
            else:
                dynamic += 1
    return keys, dynamic


def _string_value(lit):
    body = lit
    if body.startswith('"'):
        body = body[1:]
    if body.endswith('"'):
        body = body[:-1]
    return body.replace('\\"', '"').replace("\\\\", "\\")


def _extract_constant(root, header, name):
    path = os.path.join(root, header)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        text = f.read()
    m = re.search(re.escape(name) + r"\s*=\s*(\d+)", text)
    return int(m.group(1)) if m else None


def _manifest_path(root, spec):
    return os.path.join(root, MANIFEST_DIR, spec["name"] + ".keys")


def _read_manifest(path):
    if not os.path.exists(path):
        return None
    schema, keys, dynamic = None, set(), 0
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            kind, _, rest = line.partition(" ")
            if kind == "schema":
                schema = int(rest)
            elif kind == "key":
                keys.add(rest)
            elif kind == "dynamic":
                dynamic = int(rest)
    return {"schema": schema, "keys": keys, "dynamic": dynamic}


def _write_manifest(path, spec, schema, keys, dynamic):
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write("# rssd_lint schema manifest — regenerate with\n")
        f.write("#   python3 tools/rssd_lint.py --fix-manifests\n")
        f.write(f"# source: {spec['tu']}\n")
        f.write(f"# constant: {spec['constant']} "
                f"({spec['header']})\n")
        f.write(f"schema {schema}\n")
        if dynamic:
            f.write(f"dynamic {dynamic}\n")
        for k in sorted(keys):
            f.write(f"key {k}\n")


def _d3_current(root, spec):
    tu_path = os.path.join(root, spec["tu"])
    if not os.path.exists(tu_path):
        return None
    with open(tu_path, "r", encoding="utf-8", errors="replace") as f:
        text = f.read()
    toks, _ = tokenize(spec["tu"], text)
    keys, dynamic = _extract_keys(toks)
    schema = _extract_constant(root, spec["header"], spec["constant"])
    return {"schema": schema, "keys": keys, "dynamic": dynamic}


def check_d3(root):
    out = []
    spec_tus = {s["tu"] for s in D3_SPECS}
    for spec in D3_SPECS:
        cur = _d3_current(root, spec)
        if cur is None:
            continue  # TU absent under this root (fixture sandbox)
        mpath = _manifest_path(root, spec)
        man = _read_manifest(mpath)
        rel = os.path.relpath(mpath, root)
        if cur["schema"] is None:
            out.append(Finding(
                "D3", spec["header"], 1,
                f"schema constant {spec['constant']} not found — the "
                "report layout must be pinned by a named constant"))
            continue
        if man is None:
            out.append(Finding(
                "D3", spec["tu"], 1,
                f"no manifest at {rel} — run --fix-manifests and "
                "commit it"))
            continue
        keys_changed = cur["keys"] != man["keys"] \
            or cur["dynamic"] != man["dynamic"]
        schema_changed = cur["schema"] != man["schema"]
        if keys_changed and not schema_changed:
            added = sorted(cur["keys"] - man["keys"])
            removed = sorted(man["keys"] - cur["keys"])
            detail = []
            if added:
                detail.append("added " + ", ".join(added))
            if removed:
                detail.append("removed " + ", ".join(removed))
            if cur["dynamic"] != man["dynamic"]:
                detail.append(
                    f"dynamic key sites {man['dynamic']} -> "
                    f"{cur['dynamic']}")
            out.append(Finding(
                "D3", spec["tu"], 1,
                f"report key set changed ({'; '.join(detail)}) but "
                f"{spec['constant']} is still {cur['schema']} — bump "
                "the schema constant, then run --fix-manifests"))
        elif schema_changed:
            out.append(Finding(
                "D3", spec["tu"], 1,
                f"{spec['constant']} is {cur['schema']} but the "
                f"manifest pins {man['schema']} — run --fix-manifests "
                "to re-pin the layout"))
    # Keep the spec list honest: any src TU that emits a "schema" key
    # must be covered by a manifest spec.
    for relpath in iter_tree(root):
        if not relpath.startswith("src/") or relpath in spec_tus:
            continue
        with open(os.path.join(root, relpath), "r",
                  encoding="utf-8", errors="replace") as f:
            text = f.read()
        if '"schema"' not in text:
            continue
        toks, _ = tokenize(relpath, text)
        keys, _dyn = _extract_keys(toks)
        if "schema" in keys:
            out.append(Finding(
                "D3", relpath, 1,
                "TU emits a \"schema\" key but has no manifest spec — "
                "add it to D3_SPECS in tools/rssd_lint.py"))
    return out


def fix_manifests(root):
    """Regenerate manifests. Refuses to paper over a key-set change
    that is not accompanied by a schema bump."""
    wrote, errors = [], []
    for spec in D3_SPECS:
        cur = _d3_current(root, spec)
        if cur is None:
            continue
        if cur["schema"] is None:
            errors.append(f"{spec['tu']}: schema constant "
                          f"{spec['constant']} not found")
            continue
        mpath = _manifest_path(root, spec)
        man = _read_manifest(mpath)
        if man is not None:
            keys_changed = cur["keys"] != man["keys"] \
                or cur["dynamic"] != man["dynamic"]
            if keys_changed and cur["schema"] == man["schema"]:
                errors.append(
                    f"{spec['tu']}: key set changed but "
                    f"{spec['constant']} is still {cur['schema']} — "
                    "bump the constant first; --fix-manifests will "
                    "not hide a layout change")
                continue
            if not keys_changed and cur["schema"] == man["schema"]:
                continue  # up to date
        _write_manifest(mpath, spec, cur["schema"], cur["keys"],
                        cur["dynamic"])
        wrote.append(os.path.relpath(mpath, root))
    return wrote, errors


# --------------------------------------------------------------------------
# Rule C1 — chain-custody locality.
# --------------------------------------------------------------------------

def check_c1(ctx):
    if ctx.area != "src":
        return []
    out = []
    for t in ctx.tokens:
        if t.kind != "ident":
            continue
        allowed = C1_CUSTODY.get(t.text)
        if allowed is not None and ctx.relpath not in allowed:
            out.append(Finding(
                "C1", ctx.relpath, t.line,
                f"chain-custody primitive `{t.text}` referenced "
                "outside its allowlist — re-anchoring lives in ONE "
                "place; route through the owning layer or extend the "
                "allowlist in tools/rssd_lint.py with review"))
    return out


# --------------------------------------------------------------------------
# Rule P1 — allocating panicIf messages on hot paths.
# --------------------------------------------------------------------------

def check_p1(ctx):
    if not any(ctx.relpath.startswith(p) for p in P1_HOT_PREFIXES):
        return []
    toks = ctx.tokens
    out = []
    n = len(toks)
    for i, t in enumerate(toks):
        if not (t.kind == "ident" and t.text == "panicIf"
                and i + 1 < n and toks[i + 1].text == "("):
            continue
        # Split top-level arguments.
        depth, j = 0, i + 1
        args, cur = [], []
        while j < n:
            tj = toks[j]
            if tj.kind == "punct":
                if tj.text in "([{":
                    depth += 1
                    if depth == 1:
                        j += 1
                        continue
                elif tj.text in ")]}":
                    depth -= 1
                    if depth == 0:
                        args.append(cur)
                        break
                elif tj.text == "," and depth == 1:
                    args.append(cur)
                    cur = []
                    j += 1
                    continue
            cur.append(tj)
            j += 1
        if len(args) < 2:
            continue
        msg = args[1]
        builds = None
        for k, mt in enumerate(msg):
            if mt.kind == "punct" and mt.text == "+":
                prev = msg[k - 1] if k > 0 else None
                # unary plus / increment never appear in messages;
                # any '+' between tokens here is concatenation.
                if prev is not None and prev.kind in {"ident",
                                                      "string",
                                                      "num"}:
                    builds = "string concatenation"
                    break
            if mt.kind == "ident" and mt.text == "to_string":
                builds = "std::to_string"
                break
            if mt.kind == "ident" and mt.text == "string" \
                    and k + 1 < len(msg) \
                    and msg[k + 1].text in {"(", "{"}:
                builds = "std::string construction"
                break
        if builds:
            out.append(Finding(
                "P1", ctx.relpath, t.line,
                f"panicIf message builds a temporary "
                f"({builds}) — the argument is evaluated on every "
                "call even when the condition is false; use a "
                "literal, or guard with `if (cond) panic(...)`"))
    return out


# --------------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------------

def iter_tree(root):
    for d in SCAN_DIRS:
        top = os.path.join(root, d)
        if not os.path.isdir(top):
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames.sort()
            for fn in sorted(filenames):
                if not fn.endswith(SOURCE_EXTS):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, fn),
                                      root).replace(os.sep, "/")
                if any(rel.startswith(p) for p in EXCLUDE_PREFIXES):
                    continue
                yield rel


FILE_CHECKS = (check_annotations, check_d1, check_d2, check_c1,
               check_p1)


def lint_file(root, relpath):
    try:
        ctx = FileContext(root, relpath)
    except OSError as e:
        f = Finding("LINT", relpath, 1, f"unreadable: {e}")
        return [f]
    findings = []
    for check in FILE_CHECKS:
        findings.extend(check(ctx))
    for f in findings:
        if f.rule == "LINT":
            continue  # annotation problems are never suppressible
        reason = ctx.allow.get(f.line, {}).get(f.rule)
        if reason is None:
            reason = ctx.allow.get(f.line, {}).get("ALL")
        if reason is not None:
            f.suppressed = True
            f.reason = reason
    return findings


def default_root():
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(here)


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="rssd_lint",
        description="RSSD determinism / chain-custody / schema "
                    "linter. See --list-rules.")
    ap.add_argument("files", nargs="*",
                    help="root-relative files to lint (default: the "
                         "whole tree under src/, tests/, bench/, "
                         "examples/)")
    ap.add_argument("--root", default=default_root(),
                    help="repository root (default: parent of this "
                         "script)")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule catalog and exit")
    ap.add_argument("--fix-manifests", action="store_true",
                    help="regenerate tools/manifests/*.keys (refuses "
                         "to absorb a key change without a schema "
                         "bump)")
    ap.add_argument("--json", metavar="PATH", default=None,
                    help="also write a JSON report to PATH "
                         "('-' for stdout)")
    ap.add_argument("--quiet", action="store_true",
                    help="suppress per-finding text output")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rid, summary in RULES.items():
            print(f"{rid:5s} {summary}")
        return 0

    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print(f"rssd_lint: no such root: {root}", file=sys.stderr)
        return 2

    if args.fix_manifests:
        wrote, errors = fix_manifests(root)
        for w in wrote:
            print(f"rssd_lint: wrote {w}")
        if not wrote and not errors:
            print("rssd_lint: manifests already up to date")
        for e in errors:
            print(f"rssd_lint: REFUSED: {e}", file=sys.stderr)
        return 1 if errors else 0

    if args.files:
        files = [f.replace(os.sep, "/") for f in args.files]
        missing = [f for f in files
                   if not os.path.exists(os.path.join(root, f))]
        if missing:
            print("rssd_lint: no such file under root: "
                  + ", ".join(missing), file=sys.stderr)
            return 2
    else:
        files = list(iter_tree(root))

    findings = []
    for rel in files:
        findings.extend(lint_file(root, rel))
    # D3 is a whole-tree property, not a per-file one; skip it when
    # linting an explicit subset (pre-commit on changed files) unless
    # a report TU or manifest is in the subset.
    run_d3 = not args.files or any(
        f.startswith(MANIFEST_DIR) or f in {s["tu"] for s in D3_SPECS}
        or f in {s["header"] for s in D3_SPECS} for f in files)
    if run_d3:
        findings.extend(check_d3(root))

    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    active = [f for f in findings if not f.suppressed]
    suppressed = [f for f in findings if f.suppressed]

    if not args.quiet:
        for f in active:
            print(f"{f.file}:{f.line}: [{f.rule}] {f.message}")
        for f in suppressed:
            print(f"{f.file}:{f.line}: [{f.rule}] suppressed "
                  f"({f.reason})")
        print(f"rssd_lint ({ENGINE}): {len(files)} files, "
              f"{len(active)} finding(s), "
              f"{len(suppressed)} suppressed")

    if args.json:
        report = {
            "tool": "rssd_lint",
            "engine": ENGINE,
            "root": root,
            "filesScanned": len(files),
            "rules": [{"id": rid, "summary": s}
                      for rid, s in RULES.items()],
            "findings": [f.as_dict() for f in findings],
            "counts": {"active": len(active),
                       "suppressed": len(suppressed)},
        }
        blob = json.dumps(report, indent=2) + "\n"
        if args.json == "-":
            sys.stdout.write(blob)
        else:
            with open(args.json, "w", encoding="utf-8") as f:
                f.write(blob)

    return 1 if active else 0


if __name__ == "__main__":
    sys.exit(main())
