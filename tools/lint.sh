#!/usr/bin/env bash
# tools/lint.sh — one-command static-analysis entry point.
#
#   1. tools/rssd_lint.py   (determinism/custody/schema rules; GATES)
#   2. clang-tidy           (general C++ bug classes; gates on
#                            findings not in tools/clang-tidy-baseline.txt,
#                            warn-only while the baseline carries the
#                            `mode: warn-only` marker; skipped with a
#                            note when clang-tidy or a
#                            compile_commands.json is unavailable)
#   3. clang-format         (changed files only; advisory unless
#                            --strict-format; skipped when absent)
#
# Usage: tools/lint.sh [options]
#   --changed            lint only files changed vs the merge base
#                        (rssd_lint + format; tidy always runs on src/)
#   --strict-format      fail on clang-format diffs
#   --json PATH          write the rssd_lint JSON report to PATH
#   --tidy-report PATH   write normalized clang-tidy findings to PATH
#   --build-dir DIR      compile_commands.json location (default: build)
#
# Exit: non-zero if any gating step fails.

set -u -o pipefail

cd "$(dirname "$0")/.."
ROOT="$PWD"

CHANGED_ONLY=0
STRICT_FORMAT=0
JSON_OUT=""
TIDY_REPORT=""
BUILD_DIR="build"

while [ $# -gt 0 ]; do
    case "$1" in
        --changed) CHANGED_ONLY=1 ;;
        --strict-format) STRICT_FORMAT=1 ;;
        --json) JSON_OUT="$2"; shift ;;
        --tidy-report) TIDY_REPORT="$2"; shift ;;
        --build-dir) BUILD_DIR="$2"; shift ;;
        -h|--help) sed -n '2,24p' "$0"; exit 0 ;;
        *) echo "lint.sh: unknown option $1" >&2; exit 2 ;;
    esac
    shift
done

FAIL=0

# Changed files relative to the merge base with origin/main (falls
# back to HEAD for fresh clones / detached heads), plus anything
# staged or unstaged right now.
changed_files() {
    {
        base=$(git merge-base HEAD origin/main 2>/dev/null \
               || git merge-base HEAD main 2>/dev/null \
               || echo HEAD)
        git diff --name-only --diff-filter=d "$base" 2>/dev/null
        git diff --name-only --diff-filter=d 2>/dev/null
        git diff --name-only --diff-filter=d --cached 2>/dev/null
    } | sort -u | grep -E '^(src|tests|bench|examples)/.*\.(cc|hh|cpp|hpp|h)$' \
      | grep -v '^tests/tools/fixtures/' || true
}

# ---- 1. rssd_lint (gating) ------------------------------------------------

RSSD_LINT_ARGS=()
if [ -n "$JSON_OUT" ]; then
    RSSD_LINT_ARGS+=(--json "$JSON_OUT")
fi
if [ "$CHANGED_ONLY" = 1 ]; then
    mapfile -t files < <(changed_files)
    if [ "${#files[@]}" = 0 ]; then
        echo "lint.sh: no changed source files; rssd_lint skipped"
    else
        python3 tools/rssd_lint.py "${RSSD_LINT_ARGS[@]}" "${files[@]}" \
            || FAIL=1
    fi
else
    python3 tools/rssd_lint.py "${RSSD_LINT_ARGS[@]}" || FAIL=1
fi

# ---- 2. clang-tidy vs pinned baseline -------------------------------------

BASELINE="tools/clang-tidy-baseline.txt"
if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "lint.sh: clang-tidy not found; step skipped (CI runs it)"
elif [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "lint.sh: no $BUILD_DIR/compile_commands.json; clang-tidy" \
         "skipped (configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)"
else
    tidy_raw=$(mktemp)
    tidy_norm=$(mktemp)
    # src/ translation units only: benches/examples/tests inherit the
    # bulk of their code from src headers, which HeaderFilterRegex
    # already covers.
    find src -name '*.cc' -print0 \
        | xargs -0 clang-tidy -p "$BUILD_DIR" --quiet \
          >"$tidy_raw" 2>/dev/null
    # Normalize "path:line:col: warning: ... [check]" -> "path [check]"
    sed -nE "s|^$ROOT/||; s|^([^ :]+):[0-9]+:[0-9]+: (warning\|error): .* (\[[a-z0-9.,-]+\])\$|\1 \3|p" \
        "$tidy_raw" | sort -u >"$tidy_norm"
    if [ -n "$TIDY_REPORT" ]; then
        cp "$tidy_norm" "$TIDY_REPORT"
    fi
    new_findings=$(grep -vxF -f <(grep -v '^#' "$BASELINE") "$tidy_norm" \
                   || true)
    count=$(printf '%s' "$new_findings" | grep -c . || true)
    if [ "$count" -gt 0 ]; then
        echo "lint.sh: $count clang-tidy finding(s) not in baseline:"
        printf '%s\n' "$new_findings"
        if grep -q '^# mode: warn-only' "$BASELINE"; then
            echo "lint.sh: baseline is warn-only (unpinned) — not failing"
        else
            FAIL=1
        fi
    else
        echo "lint.sh: clang-tidy clean vs baseline"
    fi
    rm -f "$tidy_raw" "$tidy_norm"
fi

# ---- 3. clang-format over changed files -----------------------------------

if ! command -v clang-format >/dev/null 2>&1; then
    echo "lint.sh: clang-format not found; step skipped"
else
    mapfile -t fmt_files < <(changed_files)
    if [ "${#fmt_files[@]}" = 0 ]; then
        echo "lint.sh: no changed source files; format check skipped"
    elif ! clang-format --dry-run -Werror "${fmt_files[@]}" 2>&1; then
        if [ "$STRICT_FORMAT" = 1 ]; then
            echo "lint.sh: format check FAILED (--strict-format)"
            FAIL=1
        else
            echo "lint.sh: format diffs above are advisory" \
                 "(use --strict-format to gate)"
        fi
    else
        echo "lint.sh: format clean (${#fmt_files[@]} changed files)"
    fi
fi

if [ "$FAIL" != 0 ]; then
    echo "lint.sh: FAILED"
    exit 1
fi
echo "lint.sh: OK"
