/**
 * @file
 * Quickstart: create an RSSD, do ordinary I/O, watch the
 * ransomware-aware machinery work underneath.
 *
 *   build/examples/example_quickstart [--seed S]
 */

#include <cstdio>

#include "compress/datagen.hh"
#include "core/recovery.hh"
#include "core/rssd_device.hh"
#include "examples/argparse.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

using namespace rssd;

int
main(int argc, char **argv)
{
    examples::ArgParser args(argc, argv);
    Rng rng(args.u64("--seed", 1));
    args.finish("quickstart [--seed S]");

    // 1. Configure and create the device. forTests() gives a small
    //    16 MiB SSD with an in-process remote store behind a
    //    simulated 10 GbE NVMe-oE link.
    core::RssdConfig config = core::RssdConfig::forTests();
    VirtualClock clock;
    core::RssdDevice ssd(config, clock);

    std::printf("RSSD ready: %llu logical pages x %u B, remote "
                "budget %s\n",
                static_cast<unsigned long long>(ssd.capacityPages()),
                ssd.pageSize(),
                formatBytes(config.remote.capacityBytes).c_str());

    // 2. Ordinary host I/O through the block interface.
    std::vector<std::uint8_t> hello(ssd.pageSize(), 0);
    const char *msg = "hello, ransomware-aware world";
    std::copy(msg, msg + 29, hello.begin());

    ssd.writePage(0, hello);
    const nvme::Completion read = ssd.readPage(0);
    std::printf("read back: \"%.29s\" (latency %s)\n",
                reinterpret_cast<const char *>(read.data.data()),
                formatTime(read.latency()).c_str());

    // 3. Overwrite and trim — on a normal SSD both would eventually
    //    destroy the old data. RSSD retains every version. The
    //    overwrite content comes from the seeded RNG stream, so
    //    different --seed values exercise different payloads while
    //    any fixed seed reproduces byte-identical segments.
    compress::DataGenerator gen(rng.next(), 0.6);
    ssd.writePage(0, gen.page(ssd.pageSize()));
    ssd.trimPage(0);

    std::printf("after overwrite+trim: %zu versions retained, "
                "%llu ops logged, log chain verified: %s\n",
                ssd.retention().size(),
                static_cast<unsigned long long>(
                    ssd.opLog().totalAppended()),
                ssd.opLog().verifyHeldChain() ? "yes" : "NO");

    // 4. Force the offload path: retained versions + log entries are
    //    compressed, encrypted, and shipped to the remote store.
    ssd.drainOffload();
    const auto &off = ssd.offload().stats();
    std::printf("offloaded %llu pages in %llu segments "
                "(%.2fx compression); remote store verified: %s\n",
                static_cast<unsigned long long>(off.pagesOffloaded),
                static_cast<unsigned long long>(off.segmentsAccepted),
                off.compressionRatio(),
                ssd.backupStore().verifyFullChain() ? "yes" : "NO");

    // 5. The whole history is still recoverable: ask for LBA 0 as it
    //    was after the first write (log sequence 1 = after entry 0).
    core::DeviceHistory history(ssd);
    core::RecoveryEngine recovery(history);
    const core::RecoveryReport report = recovery.recoverToLogSeq(1);
    const nvme::Completion restored = ssd.readPage(0);
    std::printf("rolled back to logSeq 1: \"%.29s\" (recovery %s, "
                "%llu page restored)\n",
                reinterpret_cast<const char *>(restored.data.data()),
                report.ok() ? "ok" : "FAILED",
                static_cast<unsigned long long>(report.pagesRestored));
    return 0;
}
