/**
 * @file
 * A deliberately tiny command-line parser shared by the example
 * binaries (rssd_fleet's CLI and the --seed flags on the tours).
 *
 * Grammar: flags are "--name value" or bare "--name"; anything not
 * consumed as a value must itself be a flag. Unknown flags are
 * fatal() so typos fail loudly instead of silently running the
 * default configuration.
 */

#ifndef RSSD_EXAMPLES_ARGPARSE_HH
#define RSSD_EXAMPLES_ARGPARSE_HH

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace rssd::examples {

class ArgParser
{
  public:
    ArgParser(int argc, char **argv)
    {
        for (int i = 1; i < argc; i++)
            args_.emplace_back(argv[i]);
    }

    /** True if bare flag @p name is present (consumes it). */
    bool
    flag(const std::string &name)
    {
        for (std::size_t i = 0; i < args_.size(); i++) {
            if (args_[i] == name) {
                args_.erase(args_.begin() + i);
                return true;
            }
        }
        return false;
    }

    /** Value of "--name value", or @p fallback when absent. */
    std::string
    str(const std::string &name, const std::string &fallback)
    {
        for (std::size_t i = 0; i + 1 < args_.size(); i++) {
            if (args_[i] == name) {
                const std::string v = args_[i + 1];
                args_.erase(args_.begin() + i, args_.begin() + i + 2);
                return v;
            }
        }
        return fallback;
    }

    std::uint64_t
    u64(const std::string &name, std::uint64_t fallback)
    {
        const std::string v = str(name, "");
        if (v.empty())
            return fallback;
        // Digits only: strtoull would silently wrap "-1" and
        // overflowing values to huge positives.
        for (char c : v) {
            if (c < '0' || c > '9')
                fatal("flag " + name +
                      ": not a non-negative integer: " + v);
        }
        errno = 0;
        char *end = nullptr;
        const unsigned long long parsed = std::strtoull(v.c_str(),
                                                        &end, 10);
        if (end == nullptr || *end != '\0' || errno == ERANGE)
            fatal("flag " + name + ": out of range: " + v);
        return parsed;
    }

    /** Call after all lookups: any leftover argument is a typo. */
    void
    finish(const std::string &usage)
    {
        if (args_.empty())
            return;
        fatal("unknown argument \"" + args_.front() + "\"\nusage: " +
              usage);
    }

  private:
    std::vector<std::string> args_;
};

} // namespace rssd::examples

#endif // RSSD_EXAMPLES_ARGPARSE_HH
