/**
 * @file
 * Forensics walkthrough: after a stealthy timing attack, build the
 * trusted evidence chain, verify it, locate the attack window, and
 * print a per-victim I/O reconstruction — the paper's post-attack
 * analysis story.
 *
 *   build/examples/forensics_report
 */

#include <cstdio>

#include "attack/ransomware.hh"
#include "core/analyzer.hh"
#include "sim/stats.hh"
#include "core/recovery.hh"
#include "core/rssd_device.hh"

using namespace rssd;

int
main()
{
    VirtualClock clock;
    core::RssdDevice ssd(core::RssdConfig::forTests(), clock);

    // A small "filesystem" of user data.
    attack::VictimDataset victim(0, 64);
    victim.populate(ssd);
    clock.advance(units::HOUR); // quiet period

    // A timing attack: one page every 2 s, hidden in benign traffic.
    attack::TimingAttack::Params params;
    params.encryptionInterval = 2 * units::SEC;
    params.benignOpsPerEncrypt = 24;
    attack::TimingAttack attack(params);
    const attack::AttackReport atk = attack.run(ssd, clock, victim);

    std::printf("attack finished: %llu pages encrypted over %s "
                "(diluted with %llu benign ops)\n\n",
                static_cast<unsigned long long>(atk.pagesEncrypted),
                formatTime(atk.finishedAt - atk.startedAt).c_str(),
                static_cast<unsigned long long>(atk.benignOpsIssued));

    // ---- Post-attack analysis (would run on the remote host) -----
    ssd.drainOffload();
    core::DeviceHistory history(ssd);
    core::PostAttackAnalyzer analyzer(history);
    const core::AnalysisReport report = analyzer.analyze();

    std::printf("=== RSSD post-attack analysis report ===\n");
    std::printf("evidence chain           : %s (%llu entries, %llu "
                "remote segments, %s fetched)\n",
                report.chainIntact ? "VERIFIED" : "BROKEN",
                static_cast<unsigned long long>(report.totalEntries),
                static_cast<unsigned long long>(
                    report.remoteSegments),
                formatBytes(report.bytesFetched).c_str());
    std::printf("attack detected          : %s\n",
                report.finding.detected ? "yes" : "no");
    if (report.finding.detected) {
        std::printf("implicated operations    : %llu (logSeq %llu "
                    ".. %llu)\n",
                    static_cast<unsigned long long>(
                        report.finding.implicatedOps),
                    static_cast<unsigned long long>(
                        report.finding.firstSuspectSeq),
                    static_cast<unsigned long long>(
                        report.finding.lastSuspectSeq));
        std::printf("attack window            : %s .. %s\n",
                    formatTime(report.finding.attackStart).c_str(),
                    formatTime(report.finding.attackEnd).c_str());
        std::printf("recommended recovery seq : %llu\n",
                    static_cast<unsigned long long>(
                        report.finding.recommendedRecoverySeq));
    }
    std::printf("analysis time (simulated): %s\n\n",
                formatTime(report.duration()).c_str());

    // ---- Per-victim evidence chain --------------------------------
    std::printf("evidence chain for victim LBA 3:\n");
    for (const log::LogEntry &e : analyzer.backtrackLpa(3)) {
        std::printf("  logSeq %6llu  %-5s  t=%-12s entropy=%.2f "
                    "(prev version: %lld)\n",
                    static_cast<unsigned long long>(e.logSeq),
                    log::opKindName(e.op),
                    formatTime(e.timestamp).c_str(), e.entropy,
                    e.prevDataSeq == log::kNoDataSeq
                        ? -1ll
                        : static_cast<long long>(e.prevDataSeq));
    }

    // ---- Recovery at the recommendation ----------------------------
    core::RecoveryEngine recovery(history);
    const core::RecoveryReport rec = recovery.recoverToLogSeq(
        report.finding.recommendedRecoverySeq);
    std::printf("\nrecovery: %llu pages restored (%llu from remote) "
                "in %s -> victim intact: %.0f%%\n",
                static_cast<unsigned long long>(rec.pagesRestored),
                static_cast<unsigned long long>(
                    rec.restoredFromRemote),
                formatTime(rec.duration()).c_str(),
                victim.intactFraction(ssd) * 100);
    return 0;
}
