/**
 * @file
 * Capacity planner: how much remote budget does a deployment need to
 * hit a retention-time target? The operational question behind
 * Figure 2, answered for custom parameters.
 *
 *   build/examples/capacity_planner [trace] [target-days]
 *   build/examples/capacity_planner src 365
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "compress/datagen.hh"
#include "compress/lz.hh"
#include "nvme/local_ssd.hh"
#include "sim/stats.hh"
#include "workload/generator.hh"

using namespace rssd;

int
main(int argc, char **argv)
{
    const std::string trace = argc > 1 ? argv[1] : "usr";
    const double target_days = argc > 2 ? std::atof(argv[2]) : 200.0;
    const workload::TraceProfile &profile =
        workload::traceByName(trace);

    std::printf("Capacity planning for trace '%s' "
                "(%.1f GiB written/day), target retention %.0f "
                "days\n\n",
                profile.name.c_str(), profile.dailyWriteGiB,
                target_days);

    // 1. Measure the stale-production rate through a real FTL.
    ftl::FtlConfig cfg;
    cfg.geometry = flash::testGeometry();
    cfg.opFraction = 0.12;
    VirtualClock clock;
    nvme::LocalSsd probe(cfg, clock);
    workload::TraceGenerator gen(profile, probe.capacityPages(), 42);
    workload::ReplayOptions warm;
    warm.maxRequests = 20000;
    workload::replay(probe, clock, gen, warm);
    const std::uint64_t w0 = probe.ftl().stats().hostWrites;
    const std::uint64_t v0 = probe.ftl().validPageCount();
    workload::ReplayOptions run;
    run.maxRequests = 30000;
    workload::replay(probe, clock, gen, run);
    // Signed: trims can shrink the valid set, making stale
    // production exceed the write volume.
    const double valid_growth =
        static_cast<double>(probe.ftl().validPageCount()) -
        static_cast<double>(v0);
    const double writes_d =
        static_cast<double>(probe.ftl().stats().hostWrites - w0);
    const double stale_fraction = (writes_d - valid_growth) / writes_d;

    // 2. Measure the trace's compression ratio with the real codec.
    compress::DataGenerator datagen(7, profile.compressibility);
    std::size_t raw = 0, packed = 0;
    for (int i = 0; i < 64; i++) {
        const auto page = datagen.page(4096);
        raw += page.size();
        packed += compress::lzCompress(page).size();
    }
    const double ratio = compress::compressionRatio(raw, packed);

    // 3. The planning arithmetic.
    const double stale_gib_day =
        profile.dailyWriteGiB * stale_fraction;
    const double needed_gib =
        stale_gib_day * target_days / ratio;

    std::printf("measured stale production : %.2f GiB/day "
                "(%.0f%% of writes invalidate old versions)\n",
                stale_gib_day, stale_fraction * 100);
    std::printf("measured compression      : %.2fx\n", ratio);
    std::printf("\n=> remote budget needed   : %.0f GiB (%.2f TiB) "
                "for %.0f days of zero-data-loss retention\n",
                needed_gib, needed_gib / 1024.0, target_days);
    std::printf("=> monthly offload traffic: %.0f GiB on the wire "
                "(compressed + encrypted)\n",
                stale_gib_day / ratio * 30.44);

    const double link_mbps_needed =
        stale_gib_day * 1024.0 / ratio * 8.0 / 86400.0;
    std::printf("=> sustained link usage   : %.1f Mb/s average "
                "(bursts absorbed by segment batching)\n",
                link_mbps_needed * 1000.0 / 1000.0);
    return 0;
}
