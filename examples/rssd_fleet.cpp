/**
 * @file
 * rssd_fleet: simulate a fleet of RSSDs against a sharded backup
 * cluster under an attack campaign, and emit the FleetReport.
 *
 *   build/examples/rssd_fleet --devices 16 --shards 4 \
 *       --scenario outbreak --seed 7 [--ops 400] [--json report.json]
 *
 * Determinism: the same flags (and RSSD_SMOKE setting) produce a
 * byte-identical report, including the JSON file — diff two runs to
 * convince yourself. Scenarios: benign, outbreak, staggered,
 * shard-flood (see src/fleet/campaign.hh).
 *
 * RSSD_SMOKE=1 divides the per-device benign op count and the
 * shard-flood volume by 10 so the ctest/CI smoke entry finishes in
 * seconds.
 */

#include <cstdio>

#include "examples/argparse.hh"
#include "fleet/scheduler.hh"
#include "sim/stats.hh"

using namespace rssd;

namespace {

const char *kUsage =
    "rssd_fleet [--devices N] [--shards M] [--scenario "
    "benign|outbreak|staggered|shard-flood] [--seed S] [--ops N] "
    "[--json PATH]";

} // namespace

int
main(int argc, char **argv)
{
    examples::ArgParser args(argc, argv);
    const bool smoke = std::getenv("RSSD_SMOKE") != nullptr;

    fleet::FleetConfig cfg;
    cfg.devices =
        static_cast<std::uint32_t>(args.u64("--devices", 16));
    cfg.shards = static_cast<std::uint32_t>(args.u64("--shards", 4));
    cfg.seed = args.u64("--seed", 7);
    cfg.opsPerDevice = args.u64("--ops", 400);
    cfg.campaign.scenario =
        fleet::scenarioByName(args.str("--scenario", "outbreak"));
    const std::string json_path = args.str("--json", "");
    args.finish(kUsage);

    if (smoke) {
        cfg.opsPerDevice = std::max<std::uint64_t>(
            1, cfg.opsPerDevice / 10);
        cfg.campaign.floodPages = std::max<std::uint64_t>(
            1, cfg.campaign.floodPages / 10);
    }

    std::printf("rssd_fleet: %u devices -> %u shards, scenario "
                "\"%s\", seed %llu%s\n",
                cfg.devices, cfg.shards,
                fleet::scenarioName(cfg.campaign.scenario),
                static_cast<unsigned long long>(cfg.seed),
                smoke ? " [RSSD_SMOKE]" : "");

    fleet::FleetScheduler sched(cfg);
    const fleet::FleetReport report = sched.run();

    std::printf("\n%-7s %-10s %-6s %9s %9s %7s %9s\n", "device",
                "role", "shard", "encrypted", "junk", "alarms",
                "segments");
    for (const fleet::DeviceReport &d : report.deviceReports) {
        std::printf("%-7u %-10s %-6u %9llu %9llu %7llu %9llu\n",
                    d.device, d.role.c_str(), d.shard,
                    static_cast<unsigned long long>(
                        d.attack.pagesEncrypted),
                    static_cast<unsigned long long>(
                        d.attack.junkPagesWritten),
                    static_cast<unsigned long long>(d.alarms),
                    static_cast<unsigned long long>(
                        d.offload.segmentsAccepted));
    }

    std::printf("\n%-6s %-8s %8s %8s %10s %12s %12s\n", "shard",
                "devices", "segments", "batches", "stalls",
                "backlog-p99", "occupancy");
    for (const fleet::ShardReport &s : report.shardReports) {
        std::printf("%-6u %-8llu %8llu %8llu %10llu %12s %12s\n",
                    s.shard,
                    static_cast<unsigned long long>(s.devices),
                    static_cast<unsigned long long>(
                        s.segmentsAccepted),
                    static_cast<unsigned long long>(s.batches),
                    static_cast<unsigned long long>(
                        s.backpressureStalls),
                    formatTime(s.backlogP99).c_str(),
                    formatBytes(s.usedBytes).c_str());
    }

    std::printf("\nfleet totals: %llu pages encrypted, %llu junk "
                "pages, %llu alarms, %llu segments (%s), makespan "
                "%s, chains %s\n",
                static_cast<unsigned long long>(
                    report.totalPagesEncrypted),
                static_cast<unsigned long long>(report.totalJunkPages),
                static_cast<unsigned long long>(report.totalAlarms),
                static_cast<unsigned long long>(report.totalSegments),
                formatBytes(report.totalBytesStored).c_str(),
                formatTime(report.makespan).c_str(),
                report.allChainsOk ? "verified" : "BROKEN");

    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (f == nullptr)
            fatal("cannot open " + json_path);
        const std::string json = report.toJson();
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("FleetReport written to %s\n", json_path.c_str());
    }
    return report.allChainsOk ? 0 : 1;
}
