/**
 * @file
 * rssd_fleet: simulate a fleet of RSSDs against a sharded backup
 * cluster under an attack campaign, and emit the FleetReport.
 *
 *   build/examples/rssd_fleet --devices 16 --shards 4 \
 *       --scenario outbreak --seed 7 [--ops 400] [--json report.json]
 *
 * Retention lifecycle knobs (enable the shard stores' GC):
 *   --shard-capacity-mb N   per-shard budget in MiB (watermark GC)
 *   --retention-ms N        age horizon in milliseconds
 *   --retention-check       run post-campaign forensics + recovery
 *                           and exit non-zero unless every detected
 *                           encryptor's evidence chain verified and
 *                           its victim data recovered to 100% —
 *                           i.e. suspicion holds kept the flood
 *                           from evicting victims' evidence.
 *
 * Replication & membership knobs:
 *   --replication R         replica-set size per stream (quorum
 *                           ingest at R/2+1 acks; default 1)
 *   --crash-shard S         fail-stop shard S mid-run (no migration)
 *   --crash-at-ms T         crash time (default 60, mid-outbreak)
 *   --join-at-ms T          a fresh shard joins + rebalances at T
 *   --leave-shard S         shard S leaves gracefully (migrate off)
 *   --leave-at-ms T         departure time (default 60)
 *   --replication-check     run post-campaign forensics + recovery
 *                           and exit non-zero unless the campaign's
 *                           ground truth was reconstructed and every
 *                           victim recovered 100% intact from a
 *                           live (surviving) replica.
 *
 * Anti-entropy repair & scrubbing knobs:
 *   --repair                enable the RepairEngine: degraded replica
 *                           sets are re-replicated in the background
 *                           and run to convergence after the drain
 *   --repair-bw-mb N        per-target-shard repair bandwidth budget
 *                           in MiB/s (default 200)
 *   --repair-burst-kb N     token-bucket burst cap in KiB (0 =
 *                           default of max(bandwidth, 8 MiB); small
 *                           bursts keep a throttled repair's debt
 *                           visible to the health sampler)
 *   --scrub-ms N            integrity-scrub cadence in milliseconds
 *                           (0 disables scrubbing; default 10 under
 *                           --repair)
 *   --bitrot-at-ms T        inject silent bit-rot at T into one
 *                           stored copy of --bitrot-device's stream
 *   --bitrot-device D       the rotted device stream (default 0)
 *   --repair-check          exit non-zero unless the run converged to
 *                           zero degraded replica sets and zero
 *                           quarantined copies, every injected rot
 *                           was caught by a scrub, and forensics +
 *                           recovery lost no evidence (ground truth
 *                           reconstructed, victims 100% intact).
 *
 * Observability knobs:
 *   --trace-out PATH        write a Chrome trace_event JSON file
 *                           spanning the capsule lifecycle (seal ->
 *                           queue -> quorum -> repair) — load it in
 *                           chrome://tracing or Perfetto. Timestamps
 *                           are sim ticks (1 trace-us = 1 sim-ns).
 *   --metrics-out PATH      write a metrics snapshot (counters,
 *                           gauges, latency histograms) sampled
 *                           after the run, as one JSON document.
 *
 * Health & SLO knobs:
 *   --health-interval-ms N  sample every metric every N ms of sim
 *                           time on the DES spine and evaluate the
 *                           SLO rules at each sample (0 disables;
 *                           defaults to 1 when --health-out or
 *                           --health-check is given)
 *   --health-out PATH       write the time-series telemetry as
 *                           JSONL (one row per sample: tick,
 *                           metrics in registration order, windowed
 *                           per-second rates in integer arithmetic)
 *   --health-check          exit non-zero if any alert is still
 *                           open at end of run — turns any campaign
 *                           into an SLO regression test
 *
 * Determinism: the same flags (and RSSD_SMOKE setting) produce a
 * byte-identical report, including the JSON file — diff two runs to
 * convince yourself; the trace and metrics files are byte-identical
 * too, and attaching them never changes the report. Scenarios:
 * benign, outbreak, staggered, shard-flood (see
 * src/fleet/campaign.hh).
 *
 * RSSD_SMOKE=1 divides the per-device benign op count and the
 * shard-flood volume by 10 so the ctest/CI smoke entry finishes in
 * seconds.
 */

#include <cstdio>

#include "examples/argparse.hh"
#include "fleet/scheduler.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/stats.hh"

using namespace rssd;

namespace {

const char *kUsage =
    "rssd_fleet [--devices N] [--shards M] [--scenario "
    "benign|outbreak|staggered|shard-flood] [--seed S] [--ops N] "
    "[--shard-capacity-mb N] [--retention-ms N] [--flood-pages N] "
    "[--retention-check] [--replication R] [--crash-shard S] "
    "[--crash-at-ms T] [--join-at-ms T] [--leave-shard S] "
    "[--leave-at-ms T] [--replication-check] [--repair] "
    "[--repair-bw-mb N] [--repair-burst-kb N] [--scrub-ms N] "
    "[--bitrot-at-ms T] "
    "[--bitrot-device D] [--repair-check] [--json PATH] "
    "[--trace-out PATH] [--metrics-out PATH] "
    "[--health-interval-ms N] [--health-out PATH] [--health-check]";

constexpr std::uint64_t kNoFlag = ~0ull;

void
writeTextFile(const std::string &path, const std::string &text,
              const char *what)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        fatal("cannot open " + path);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("%s written to %s\n", what, path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    examples::ArgParser args(argc, argv);
    // rssd-lint: allow-next-line(D1) smoke switch shrinks the campaign; every run at a given size/seed stays byte-identical
    const bool smoke = std::getenv("RSSD_SMOKE") != nullptr;

    fleet::FleetConfig cfg;
    cfg.devices =
        static_cast<std::uint32_t>(args.u64("--devices", 16));
    cfg.shards = static_cast<std::uint32_t>(args.u64("--shards", 4));
    cfg.seed = args.u64("--seed", 7);
    cfg.opsPerDevice = args.u64("--ops", 400);
    cfg.campaign.scenario =
        fleet::scenarioByName(args.str("--scenario", "outbreak"));
    const std::uint64_t capacity_mb =
        args.u64("--shard-capacity-mb", 0);
    const std::uint64_t retention_ms = args.u64("--retention-ms", 0);
    cfg.campaign.floodPages =
        args.u64("--flood-pages", cfg.campaign.floodPages);
    const bool retention_check = args.flag("--retention-check");
    cfg.replication =
        static_cast<std::uint32_t>(args.u64("--replication", 1));
    const std::uint64_t crash_shard =
        args.u64("--crash-shard", kNoFlag);
    const std::uint64_t crash_at_ms = args.u64("--crash-at-ms", 60);
    const std::uint64_t join_at_ms =
        args.u64("--join-at-ms", kNoFlag);
    const std::uint64_t leave_shard =
        args.u64("--leave-shard", kNoFlag);
    const std::uint64_t leave_at_ms = args.u64("--leave-at-ms", 60);
    const bool replication_check = args.flag("--replication-check");
    const bool repair = args.flag("--repair");
    const std::uint64_t repair_bw_mb = args.u64("--repair-bw-mb", 200);
    const std::uint64_t repair_burst_kb =
        args.u64("--repair-burst-kb", 0);
    const std::uint64_t scrub_ms =
        args.u64("--scrub-ms", repair ? 10 : 0);
    const std::uint64_t bitrot_at_ms =
        args.u64("--bitrot-at-ms", kNoFlag);
    const std::uint64_t bitrot_device = args.u64("--bitrot-device", 0);
    const bool repair_check = args.flag("--repair-check");
    const std::string json_path = args.str("--json", "");
    const std::string trace_path = args.str("--trace-out", "");
    const std::string metrics_path = args.str("--metrics-out", "");
    std::uint64_t health_interval_ms =
        args.u64("--health-interval-ms", 0);
    const std::string health_path = args.str("--health-out", "");
    const bool health_check = args.flag("--health-check");
    args.finish(kUsage);

    if (health_interval_ms == 0 &&
        (!health_path.empty() || health_check))
        health_interval_ms = 1;

    if (repair) {
        cfg.repair.enabled = true;
        cfg.repair.bandwidthBytesPerSec = repair_bw_mb * units::MiB;
        cfg.repair.burstBytes = repair_burst_kb * 1024;
        cfg.repair.scrubInterval = scrub_ms * units::MS;
    }
    cfg.health.interval = health_interval_ms * units::MS;
    if (bitrot_at_ms != kNoFlag) {
        // Rot the second live copy-holder (mod live holders), a few
        // segments in — a non-primary copy so foreground ingest and
        // tail votes stay clean and only the scrub can notice.
        cfg.bitRot.push_back(
            {bitrot_at_ms * units::MS,
             static_cast<remote::DeviceId>(bitrot_device), 1, 2});
    }

    if (crash_shard != kNoFlag) {
        cfg.membership.push_back(
            {crash_at_ms * units::MS, fleet::MembershipKind::CrashShard,
             static_cast<remote::ShardId>(crash_shard)});
    }
    if (join_at_ms != kNoFlag) {
        cfg.membership.push_back({join_at_ms * units::MS,
                                  fleet::MembershipKind::JoinShard, 0});
    }
    if (leave_shard != kNoFlag) {
        cfg.membership.push_back(
            {leave_at_ms * units::MS, fleet::MembershipKind::LeaveShard,
             static_cast<remote::ShardId>(leave_shard)});
    }

    if (capacity_mb > 0)
        cfg.cluster.shard.capacityBytes = capacity_mb * units::MiB;
    if (retention_ms > 0)
        cfg.cluster.shard.retention.retentionWindow =
            retention_ms * units::MS;
    if (capacity_mb > 0 || retention_ms > 0)
        cfg.cluster.shard.retention.gcEnabled = true;

    if (smoke) {
        cfg.opsPerDevice = std::max<std::uint64_t>(
            1, cfg.opsPerDevice / 10);
        cfg.campaign.floodPages = std::max<std::uint64_t>(
            1, cfg.campaign.floodPages / 10);
        // A tenth of the flood over the full span would barely
        // overwrite — scale the shape, not break it (flood pressure
        // comes from overwritten versions entering retention).
        cfg.campaign.floodSpanFraction /= 10.0;
    }

    std::printf("rssd_fleet: %u devices -> %u shards (R=%u), "
                "scenario \"%s\", seed %llu%s\n",
                cfg.devices, cfg.shards, cfg.replication,
                fleet::scenarioName(cfg.campaign.scenario),
                static_cast<unsigned long long>(cfg.seed),
                smoke ? " [RSSD_SMOKE]" : "");

    fleet::FleetScheduler sched(cfg);

    obs::TraceSink trace;
    if (!trace_path.empty())
        sched.attachTrace(&trace);
    obs::MetricsRegistry registry;
    if (!metrics_path.empty())
        sched.registerMetrics(registry);

    const fleet::FleetReport report = sched.run();

    std::printf("\n%-7s %-10s %-6s %9s %9s %7s %9s\n", "device",
                "role", "shard", "encrypted", "junk", "alarms",
                "segments");
    for (const fleet::DeviceReport &d : report.deviceReports) {
        std::printf("%-7u %-10s %-6u %9llu %9llu %7llu %9llu\n",
                    d.device, d.role.c_str(), d.shard,
                    static_cast<unsigned long long>(
                        d.attack.pagesEncrypted),
                    static_cast<unsigned long long>(
                        d.attack.junkPagesWritten),
                    static_cast<unsigned long long>(d.alarms),
                    static_cast<unsigned long long>(
                        d.offload.segmentsAccepted));
    }

    std::printf("\n%-6s %-9s %-8s %8s %8s %10s %12s %12s\n", "shard",
                "status", "devices", "segments", "batches", "stalls",
                "backlog-p99", "occupancy");
    for (const fleet::ShardReport &s : report.shardReports) {
        std::printf("%-6u %-9s %-8llu %8llu %8llu %10llu %12s %12s\n",
                    s.shard, s.status.c_str(),
                    static_cast<unsigned long long>(s.devices),
                    static_cast<unsigned long long>(
                        s.segmentsAccepted),
                    static_cast<unsigned long long>(s.batches),
                    static_cast<unsigned long long>(
                        s.backpressureStalls),
                    formatTime(s.backlogP99).c_str(),
                    formatBytes(s.usedBytes).c_str());
    }

    std::printf("\nfleet totals: %llu pages encrypted, %llu junk "
                "pages, %llu alarms, %llu segments (%s), makespan "
                "%s, chains %s\n",
                static_cast<unsigned long long>(
                    report.totalPagesEncrypted),
                static_cast<unsigned long long>(report.totalJunkPages),
                static_cast<unsigned long long>(report.totalAlarms),
                static_cast<unsigned long long>(report.totalSegments),
                formatBytes(report.totalBytesStored).c_str(),
                formatTime(report.makespan).c_str(),
                report.allChainsOk ? "verified" : "BROKEN");
    if (report.totalSegmentsPruned > 0) {
        std::printf("retention GC: %llu segments pruned (%s freed), "
                    "streams re-anchored and verified\n",
                    static_cast<unsigned long long>(
                        report.totalSegmentsPruned),
                    formatBytes(report.totalBytesPruned).c_str());
    }
    if (cfg.replication > 1 || !cfg.membership.empty()) {
        const remote::ReplicationStats &rs = report.replicationStats;
        std::printf("replication: R=%u, %u/%u shards live, %llu "
                    "quorum writes (%llu partial, %llu stalls), "
                    "%llu streams / %llu segments migrated (%s)\n",
                    report.replication, report.liveShards,
                    report.shards,
                    static_cast<unsigned long long>(rs.quorumWrites),
                    static_cast<unsigned long long>(rs.partialWrites),
                    static_cast<unsigned long long>(rs.quorumStalls),
                    static_cast<unsigned long long>(
                        rs.streamsMigrated),
                    static_cast<unsigned long long>(
                        rs.segmentsMigrated),
                    formatBytes(rs.bytesMigrated).c_str());
    }
    if (report.repairEnabled) {
        const remote::RepairStats &ps = report.repairStats;
        std::printf("repair: %llu streams repaired (%llu enqueued), "
                    "%llu segments (%s) re-replicated, %llu "
                    "re-anchors, converged at %s\n",
                    static_cast<unsigned long long>(
                        ps.streamsRepaired),
                    static_cast<unsigned long long>(ps.enqueues),
                    static_cast<unsigned long long>(
                        ps.segmentsCopied),
                    formatBytes(ps.bytesCopied).c_str(),
                    static_cast<unsigned long long>(ps.reanchors),
                    formatTime(report.repairConvergedAt).c_str());
        std::printf("scrub: %llu segments verified over %llu passes, "
                    "%llu corruptions quarantined and healed; "
                    "degraded at end: %llu, quarantined at end: "
                    "%llu\n",
                    static_cast<unsigned long long>(
                        ps.scrubbedSegments),
                    static_cast<unsigned long long>(ps.scrubPasses),
                    static_cast<unsigned long long>(
                        ps.scrubCorruptions),
                    static_cast<unsigned long long>(
                        report.degradedAtEnd),
                    static_cast<unsigned long long>(
                        report.quarantinedAtEnd));
    }

    if (report.health.enabled) {
        std::printf("health: %llu samples @ %s, %llu alerts raised "
                    "(%llu open), worst severity %s\n",
                    static_cast<unsigned long long>(
                        report.health.samples),
                    formatTime(report.health.interval).c_str(),
                    static_cast<unsigned long long>(
                        report.health.alertsRaised),
                    static_cast<unsigned long long>(
                        report.health.alertsOpen),
                    report.health.worstSeverity.c_str());
        for (const fleet::HealthAlertReport &a :
             report.health.alerts) {
            const std::string end = a.open
                ? "still OPEN"
                : "cleared @ " + formatTime(a.clearedAt);
            std::printf("  alert %s [%s] raised @ %s, %s "
                        "(observed %llu)\n",
                        a.rule.c_str(), a.severity.c_str(),
                        formatTime(a.raisedAt).c_str(), end.c_str(),
                        static_cast<unsigned long long>(a.observed));
        }
    }

    bool check_ok = true;
    if (health_check) {
        // The SLO acceptance gate: transient alerts that raised and
        // cleared are reported but pass; an alert still open at end
        // of run means the fleet finished unhealthy.
        if (report.health.alertsOpen != 0) {
            std::printf("health-check: FAIL (%llu alerts still open "
                        "at end of run)\n",
                        static_cast<unsigned long long>(
                            report.health.alertsOpen));
            check_ok = false;
        } else {
            std::printf("health-check: OK (%llu alerts raised, all "
                        "cleared)\n",
                        static_cast<unsigned long long>(
                            report.health.alertsRaised));
        }
    }

    if (retention_check) {
        // The capacity-pressure acceptance gate: after a campaign
        // against GC-enabled shards, cluster-side forensics must
        // still verify every stream (pruned ones via their signed
        // re-anchor records), and every detected encryptor's victim
        // data must recover to 100% — the suspicion holds kept the
        // flood from evicting the evidence recovery needs.
        const forensics::ForensicsReport fr = sched.runForensics();
        if (!sched.cluster().verifyAll()) {
            std::printf("retention-check: FAIL (chain verification "
                        "after GC)\n");
            check_ok = false;
        }
        std::uint64_t encryptors_checked = 0;
        for (const forensics::RecoveryOutcome &r : fr.recovery) {
            const auto idx = static_cast<std::uint32_t>(r.device);
            if (report.deviceReports[idx].role != "encryptor")
                continue;
            encryptors_checked++;
            if (r.victimIntactAfter != 1.0 || r.unresolved != 0 ||
                r.beforePrunedHorizon) {
                std::printf("retention-check: FAIL (device %llu "
                            "recovered %.3f intact, %llu "
                            "unresolved)\n",
                            static_cast<unsigned long long>(r.device),
                            r.victimIntactAfter,
                            static_cast<unsigned long long>(
                                r.unresolved));
                check_ok = false;
            }
        }
        // Only demand recovered encryptors when the campaign had
        // any (a shard-flood on a 1-shard fleet makes every device
        // a flooder — chain verification is then the whole check).
        bool any_encryptor = false;
        for (const fleet::DeviceReport &d : report.deviceReports)
            any_encryptor = any_encryptor || d.role == "encryptor";
        if (any_encryptor && encryptors_checked == 0) {
            std::printf("retention-check: FAIL (no encryptor was "
                        "detected and recovered)\n");
            check_ok = false;
        }
        if (check_ok) {
            std::printf("retention-check: OK (%llu encryptors "
                        "recovered 100%% intact, %llu segments "
                        "pruned)\n",
                        static_cast<unsigned long long>(
                            encryptors_checked),
                        static_cast<unsigned long long>(
                            report.totalSegmentsPruned));
        }
    }

    if (replication_check) {
        // The durability acceptance gate: after a membership fault
        // (typically --crash-shard mid-outbreak), forensics over the
        // surviving replicas must still reconstruct the campaign's
        // ground truth, and every detected victim must restore to
        // 100% intact with its history read from a live replica.
        const forensics::ForensicsReport fr = sched.runForensics();
        if (!fr.campaignClassMatch || !fr.patientZeroMatch ||
            !fr.infectionOrderMatch) {
            std::printf("replication-check: FAIL (ground truth not "
                        "reconstructed from surviving replicas)\n");
            check_ok = false;
        }
        std::uint64_t recovered = 0;
        for (const forensics::RecoveryOutcome &r : fr.recovery) {
            recovered++;
            const bool live_source =
                r.restoredFromShard != remote::kNoShard &&
                sched.cluster().shardAlive(r.restoredFromShard);
            if (r.victimIntactAfter != 1.0 || r.unresolved != 0 ||
                !live_source) {
                std::printf(
                    "replication-check: FAIL (device %llu recovered "
                    "%.3f intact, %llu unresolved, source shard "
                    "%u)\n",
                    static_cast<unsigned long long>(r.device),
                    r.victimIntactAfter,
                    static_cast<unsigned long long>(r.unresolved),
                    r.restoredFromShard);
                check_ok = false;
            }
        }
        if (recovered == 0 &&
            cfg.campaign.scenario != fleet::Scenario::Benign) {
            std::printf("replication-check: FAIL (no device was "
                        "detected and recovered)\n");
            check_ok = false;
        }
        if (check_ok) {
            std::printf("replication-check: OK (%llu devices, "
                        "replica-sourced recovery 100%% intact, "
                        "%u/%u shards live)\n",
                        static_cast<unsigned long long>(recovered),
                        report.liveShards, report.shards);
        }
    }

    if (repair_check) {
        // The self-healing acceptance gate: whatever faults the run
        // scripted (crashes, bit-rot), anti-entropy must have
        // converged — every replica set back to full strength, no
        // copy left quarantined — and the healed cluster must still
        // support a full-fidelity investigation.
        if (!repair) {
            std::printf("repair-check: FAIL (--repair not enabled)\n");
            check_ok = false;
        }
        if (report.degradedAtEnd != 0 ||
            report.quarantinedAtEnd != 0) {
            std::printf("repair-check: FAIL (%llu degraded replica "
                        "sets, %llu quarantined copies at end)\n",
                        static_cast<unsigned long long>(
                            report.degradedAtEnd),
                        static_cast<unsigned long long>(
                            report.quarantinedAtEnd));
            check_ok = false;
        }
        if (bitrot_at_ms != kNoFlag &&
            report.repairStats.scrubCorruptions == 0) {
            std::printf("repair-check: FAIL (injected bit-rot never "
                        "caught by a scrub)\n");
            check_ok = false;
        }
        const forensics::ForensicsReport fr = sched.runForensics();
        if (!sched.cluster().verifyAll()) {
            std::printf("repair-check: FAIL (chain verification "
                        "after repair)\n");
            check_ok = false;
        }
        if (!fr.campaignClassMatch || !fr.patientZeroMatch ||
            !fr.infectionOrderMatch) {
            std::printf("repair-check: FAIL (ground truth not "
                        "reconstructed from the healed cluster)\n");
            check_ok = false;
        }
        std::uint64_t recovered = 0;
        for (const forensics::RecoveryOutcome &r : fr.recovery) {
            recovered++;
            if (r.victimIntactAfter != 1.0 || r.unresolved != 0) {
                std::printf("repair-check: FAIL (device %llu "
                            "recovered %.3f intact, %llu "
                            "unresolved)\n",
                            static_cast<unsigned long long>(r.device),
                            r.victimIntactAfter,
                            static_cast<unsigned long long>(
                                r.unresolved));
                check_ok = false;
            }
        }
        if (recovered == 0 &&
            cfg.campaign.scenario != fleet::Scenario::Benign) {
            std::printf("repair-check: FAIL (no device was detected "
                        "and recovered)\n");
            check_ok = false;
        }
        if (check_ok) {
            std::printf("repair-check: OK (%llu streams repaired, "
                        "%llu corruptions healed, %llu devices "
                        "recovered 100%% intact, 0 degraded / 0 "
                        "quarantined)\n",
                        static_cast<unsigned long long>(
                            report.repairStats.streamsRepaired),
                        static_cast<unsigned long long>(
                            report.repairStats.scrubCorruptions),
                        static_cast<unsigned long long>(recovered));
        }
    }

    if (!json_path.empty())
        writeTextFile(json_path, report.toJson(), "FleetReport");
    if (!trace_path.empty())
        writeTextFile(trace_path, trace.toChromeJson(), "trace");
    if (!metrics_path.empty()) {
        writeTextFile(metrics_path, registry.snapshotJson(),
                      "metrics");
    }
    if (!health_path.empty()) {
        writeTextFile(health_path, sched.healthTimeSeriesJsonl(),
                      "health time series");
    }
    return report.allChainsOk && check_ok ? 0 : 1;
}
