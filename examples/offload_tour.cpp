/**
 * @file
 * Tour of the hardware-isolated NVMe-oE offload path (Figure 1):
 * watch retained pages travel from the FTL through segment sealing
 * (compress -> encrypt -> MAC) onto the simulated Ethernet link and
 * into the remote store, with wire-level accounting — including a
 * corrupted-frame retransmission and a rejected forged segment.
 *
 *   build/examples/example_offload_tour [--seed S]
 */

#include <cstdio>

#include "compress/datagen.hh"
#include "core/rssd_device.hh"
#include "examples/argparse.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

using namespace rssd;

int
main(int argc, char **argv)
{
    examples::ArgParser args(argc, argv);
    Rng rng(args.u64("--seed", 3));
    args.finish("offload_tour [--seed S]");

    core::RssdConfig config = core::RssdConfig::forTests();
    config.segmentPages = 64;
    config.pumpThreshold = 1u << 30; // manual pumping only
    VirtualClock clock;
    core::RssdDevice ssd(config, clock);

    // Produce retention: overwrite user-like data repeatedly.
    compress::DataGenerator gen(rng.next(), 0.6);
    for (int round = 0; round < 4; round++) {
        for (flash::Lpa lpa = 0; lpa < 64; lpa++)
            ssd.writePage(lpa, gen.page(ssd.pageSize()));
    }
    std::printf("retention backlog: %zu stale pages held on flash "
                "(%llu held by FTL)\n",
                ssd.retention().size(),
                static_cast<unsigned long long>(
                    ssd.ftl().heldPageCount()));

    // Inject a corrupted frame into the first transfer.
    ssd.link().tx().corruptNextTransfer();

    // Ship everything.
    ssd.drainOffload();

    const auto &off = ssd.offload().stats();
    const auto &tx = ssd.transport().stats();
    const auto &wire = ssd.link().tx().stats();
    std::printf("\n--- offload engine ---\n");
    std::printf("segments sealed/accepted : %llu / %llu\n",
                static_cast<unsigned long long>(off.segmentsSealed),
                static_cast<unsigned long long>(
                    off.segmentsAccepted));
    std::printf("raw -> sealed bytes      : %s -> %s (%.2fx "
                "compression, then ChaCha20 + HMAC)\n",
                formatBytes(off.bytesRaw).c_str(),
                formatBytes(off.bytesSealed).c_str(),
                off.compressionRatio());
    std::printf("\n--- NVMe-oE transport ---\n");
    std::printf("segments sent            : %llu (%llu retransmit "
                "after CRC failure)\n",
                static_cast<unsigned long long>(tx.segmentsSent),
                static_cast<unsigned long long>(tx.retransmits));
    std::printf("ethernet frames          : %llu (%s on the wire, "
                "%llu corrupted)\n",
                static_cast<unsigned long long>(wire.framesSent),
                formatBytes(wire.wireBytes).c_str(),
                static_cast<unsigned long long>(
                    wire.corruptedFrames));
    std::printf("\n--- remote store ---\n");
    std::printf("segments stored          : %zu (%s of %s budget)\n",
                ssd.backupStore().segmentCount(),
                formatBytes(ssd.backupStore().usedBytes()).c_str(),
                formatBytes(ssd.backupStore().capacityBytes())
                    .c_str());
    std::printf("full chain verification  : %s\n",
                ssd.backupStore().verifyFullChain() ? "PASS"
                                                    : "FAIL");

    // Demonstrate the trust boundary: a forged segment (wrong key)
    // is rejected even if it reaches the store.
    log::SegmentCodec rogue_codec =
        log::SegmentCodec::fromSeed("attacker-key");
    log::Segment forged;
    forged.id = ssd.backupStore().segmentCount();
    forged.prevId = forged.id - 1;
    Tick ack = 0;
    const bool accepted = ssd.backupStore().ingestSegment(
        rogue_codec.seal(forged), clock.now(), ack);
    std::printf("\nforged segment injection : %s (%s)\n",
                accepted ? "ACCEPTED (!)" : "rejected",
                remote::rejectReasonName(
                    ssd.backupStore().lastRejectReason()));
    return 0;
}
