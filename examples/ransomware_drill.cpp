/**
 * @file
 * Ransomware drill: run all four attack models against RSSD and
 * against the undefended LocalSSD, and compare what survives.
 * This is the paper's headline demonstration in one binary.
 *
 *   build/examples/example_ransomware_drill [--seed S]
 */

#include <cstdio>
#include <memory>

#include "attack/ransomware.hh"
#include "baseline/rssd_defense.hh"
#include "baseline/software_defenses.hh"
#include "examples/argparse.hh"
#include "sim/rng.hh"

using namespace rssd;

namespace {

ftl::FtlConfig
plainConfig()
{
    ftl::FtlConfig cfg;
    cfg.geometry = flash::testGeometry();
    cfg.opFraction = 0.12;
    return cfg;
}

std::unique_ptr<attack::Ransomware>
makeAttack(int which, const attack::AttackConfig &cfg)
{
    switch (which) {
      case 0: return std::make_unique<attack::ClassicRansomware>(cfg);
      case 1: {
        attack::GcAttack::Params p;
        p.floodCapacityMultiple = 1.0;
        p.floodSpanFraction = 0.4;
        return std::make_unique<attack::GcAttack>(p, cfg);
      }
      case 2: {
        attack::TimingAttack::Params p;
        p.benignOpsPerEncrypt = 24;
        return std::make_unique<attack::TimingAttack>(p, cfg);
      }
      default:
        return std::make_unique<attack::TrimmingAttack>(
            attack::TrimmingAttack::Params(), cfg);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    examples::ArgParser args(argc, argv);
    Rng rng(args.u64("--seed", 42));
    args.finish("ransomware_drill [--seed S]");

    std::printf("Ransomware drill: 128 victim pages, four attacks, "
                "two devices.\n\n");
    std::printf("%-16s | %-22s | %-22s\n", "attack",
                "LocalSSD (undefended)", "RSSD");
    std::printf("%-16s | %-22s | %-22s\n", "",
                "intact after attack", "intact after recovery");
    std::printf("-----------------+------------------------+--------"
                "---------------\n");

    for (int which = 0; which < 4; which++) {
        // One seed stream per round: the same victim dataset and
        // attacker randomness hit both devices, so the comparison is
        // apples to apples.
        const std::uint64_t victim_seed = rng.next();
        attack::AttackConfig attack_cfg;
        attack_cfg.rngSeed = rng.next();

        // Undefended baseline.
        VirtualClock c1;
        baseline::PlainSsdDefense plain(plainConfig(), c1);
        attack::VictimDataset v1(0, 128, 0.7, victim_seed);
        v1.populate(plain.device());
        auto a1 = makeAttack(which, attack_cfg);
        a1->run(plain.device(), c1, v1);
        const double plain_intact = v1.intactFraction(plain.device());

        // RSSD with the full analysis+recovery pipeline.
        VirtualClock c2;
        baseline::RssdDefense rssd(core::RssdConfig::forTests(), c2);
        attack::VictimDataset v2(0, 128, 0.7, victim_seed);
        v2.populate(rssd.device());
        const Tick t0 = c2.now();
        auto a2 = makeAttack(which, attack_cfg);
        const attack::AttackReport report =
            a2->run(rssd.device(), c2, v2);
        rssd.attemptRecovery(v2, t0);
        const double rssd_intact = v2.intactFraction(rssd.device());

        std::printf("%-16s | %20.0f%% | %17.0f%% %s\n",
                    report.attack.c_str(), plain_intact * 100,
                    rssd_intact * 100,
                    rssd.forensicsAvailable() ? "(chain ok)" : "");
    }

    std::printf("\nRSSD recovered 100%% of the victim data after "
                "every attack, with a\nverified evidence chain; the "
                "undefended SSD lost everything.\n");
    return 0;
}
