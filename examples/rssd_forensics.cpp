/**
 * @file
 * rssd_forensics: run a fleet campaign, then run the cluster-side
 * forensics pipeline where the evidence lives — verify every stream's
 * chain, identify the compromised devices and patient zero,
 * reconstruct the spread, classify the campaign, plan and execute
 * recovery — and emit the deterministic ForensicsReport.
 *
 *   build/examples/rssd_forensics --devices 16 --shards 4 \
 *       --scenario outbreak --seed 7 [--ops 400] [--json report.json] \
 *       [--check]
 *
 * --check makes the exit code assert the forensics conclusions
 * against the campaign ground truth (patient zero, infection order,
 * campaign class) — the CI smoke job runs with it.
 *
 * Observability knobs:
 *   --trace-out PATH    Chrome trace_event JSON of the campaign run
 *                       (chrome://tracing / Perfetto; sim-tick
 *                       timestamps, 1 trace-us = 1 sim-ns)
 *   --metrics-out PATH  metrics snapshot (fleet instruments plus the
 *                       evidence scanner's scan-cost counters under
 *                       "forensics."), sampled after the analysis
 *
 * Health & SLO knobs (see rssd_fleet for details):
 *   --health-interval-ms N  periodic time-series sampling + SLO rule
 *                           evaluation on the DES spine (0 disables;
 *                           defaults to 1 under --health-out or
 *                           --health-check)
 *   --health-out PATH       write the time-series telemetry JSONL
 *   --health-check          exit non-zero if any SLO alert is still
 *                           open when the campaign ends
 *
 * Determinism: the same flags (and RSSD_SMOKE setting) produce a
 * byte-identical report; CI byte-compares two runs. The trace and
 * metrics files are byte-identical too.
 *
 * RSSD_SMOKE=1 divides the per-device benign op count and the
 * shard-flood volume by 10 so the ctest/CI smoke entry finishes in
 * seconds.
 */

#include <cstdio>

#include "examples/argparse.hh"
#include "fleet/scheduler.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/stats.hh"

using namespace rssd;

namespace {

const char *kUsage =
    "rssd_forensics [--devices N] [--shards M] [--scenario "
    "benign|outbreak|staggered|shard-flood] [--seed S] [--ops N] "
    "[--json PATH] [--check] [--trace-out PATH] "
    "[--metrics-out PATH] [--health-interval-ms N] "
    "[--health-out PATH] [--health-check]";

void
writeTextFile(const std::string &path, const std::string &text,
              const char *what)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        fatal("cannot open " + path);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("%s written to %s\n", what, path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    examples::ArgParser args(argc, argv);
    // rssd-lint: allow-next-line(D1) smoke switch shrinks the campaign; every run at a given size/seed stays byte-identical
    const bool smoke = std::getenv("RSSD_SMOKE") != nullptr;

    fleet::FleetConfig cfg;
    cfg.devices =
        static_cast<std::uint32_t>(args.u64("--devices", 16));
    cfg.shards = static_cast<std::uint32_t>(args.u64("--shards", 4));
    cfg.seed = args.u64("--seed", 7);
    cfg.opsPerDevice = args.u64("--ops", 400);
    cfg.campaign.scenario =
        fleet::scenarioByName(args.str("--scenario", "outbreak"));
    const std::string json_path = args.str("--json", "");
    const bool check = args.flag("--check");
    const std::string trace_path = args.str("--trace-out", "");
    const std::string metrics_path = args.str("--metrics-out", "");
    std::uint64_t health_interval_ms =
        args.u64("--health-interval-ms", 0);
    const std::string health_path = args.str("--health-out", "");
    const bool health_check = args.flag("--health-check");
    args.finish(kUsage);

    if (health_interval_ms == 0 &&
        (!health_path.empty() || health_check))
        health_interval_ms = 1;
    cfg.health.interval = health_interval_ms * units::MS;

    if (smoke) {
        cfg.opsPerDevice = std::max<std::uint64_t>(
            1, cfg.opsPerDevice / 10);
        cfg.campaign.floodPages = std::max<std::uint64_t>(
            1, cfg.campaign.floodPages / 10);
        // Shrink the flood *span* with the flood volume: the attack
        // signature (junk overwriting junk) needs the flood to wrap
        // its span, and a 10x-smaller flood over the full span would
        // never overwrite — smoke must scale the shape, not break it.
        cfg.campaign.floodSpanFraction /= 10.0;
    }

    std::printf("rssd_forensics: campaign \"%s\" over %u devices -> "
                "%u shards, seed %llu%s\n",
                fleet::scenarioName(cfg.campaign.scenario),
                cfg.devices, cfg.shards,
                static_cast<unsigned long long>(cfg.seed),
                smoke ? " [RSSD_SMOKE]" : "");

    fleet::FleetScheduler sched(cfg);

    obs::TraceSink trace;
    if (!trace_path.empty())
        sched.attachTrace(&trace);
    obs::MetricsRegistry registry;
    if (!metrics_path.empty())
        sched.registerMetrics(registry);

    const fleet::FleetReport fleet_report = sched.run();
    const forensics::ForensicsReport report = sched.runForensics();

    // The scanner exists only after runForensics(); registering here
    // still precedes the snapshot (closures sample at write time).
    if (!metrics_path.empty() && sched.evidenceScanner() != nullptr) {
        sched.evidenceScanner()->registerMetrics(registry,
                                                 "forensics.");
    }

    std::printf("\nevidence: %llu segments (%s) across %llu shards; "
                "scan verified %llu segments / %llu entries (%s)\n",
                static_cast<unsigned long long>(report.totalSegments),
                formatBytes(report.totalBytesStored).c_str(),
                static_cast<unsigned long long>(report.shards),
                static_cast<unsigned long long>(
                    report.lastPass.segmentsVerified),
                static_cast<unsigned long long>(
                    report.lastPass.entriesReplayed),
                formatBytes(report.lastPass.bytesVerified).c_str());

    std::printf("\n%-7s %-6s %-6s %9s %12s %11s %6s\n", "device",
                "shard", "chain", "detected", "implicated",
                "recoverySeq", "flood");
    for (const forensics::DeviceFinding &f :
         report.correlation.findings) {
        std::printf("%-7llu %-6u %-6s %9s %12llu %11llu %6s\n",
                    static_cast<unsigned long long>(f.device),
                    f.shard, f.chainIntact ? "ok" : "BROKEN",
                    f.finding.detected ? "yes" : "no",
                    static_cast<unsigned long long>(
                        f.finding.implicatedOps),
                    static_cast<unsigned long long>(
                        f.finding.recommendedRecoverySeq),
                    f.floodSuspect ? "yes" : "no");
    }

    const forensics::Correlation &c = report.correlation;
    std::printf("\ncampaign classified: %s (truth: %s)\n",
                forensics::campaignClassName(c.campaignClass),
                report.truth.scenario.c_str());
    if (c.anyDetected) {
        std::printf("patient zero: device %llu (truth: %llu) — %s\n",
                    static_cast<unsigned long long>(c.patientZero),
                    static_cast<unsigned long long>(
                        report.truth.patientZero),
                    report.patientZeroMatch ? "match" : "MISMATCH");
        std::printf("infection order:");
        for (const forensics::DeviceId d : c.infectionOrder)
            std::printf(" %llu", static_cast<unsigned long long>(d));
        std::printf(" — %s\n", report.infectionOrderMatch
                                   ? "match"
                                   : "MISMATCH");
    }

    for (const forensics::RestorePlan &p : report.plans) {
        std::printf("plan %-26s makespan %-10s mean completion %s\n",
                    forensics::planPolicyName(p.policy),
                    formatTime(p.makespan).c_str(),
                    formatTime(p.meanCompletion).c_str());
    }

    std::uint64_t restored = 0;
    double worst_after = 1.0;
    for (const forensics::RecoveryOutcome &r : report.recovery) {
        restored += r.pagesRestored;
        worst_after = std::min(worst_after, r.victimIntactAfter);
    }
    std::printf("recovery executed: %zu devices, %llu pages "
                "restored, worst victim intact after: %.0f%%\n",
                report.recovery.size(),
                static_cast<unsigned long long>(restored),
                worst_after * 100);

    bool health_ok = true;
    if (fleet_report.health.enabled) {
        std::printf("health: %llu samples, %llu alerts raised "
                    "(%llu open), worst severity %s\n",
                    static_cast<unsigned long long>(
                        fleet_report.health.samples),
                    static_cast<unsigned long long>(
                        fleet_report.health.alertsRaised),
                    static_cast<unsigned long long>(
                        fleet_report.health.alertsOpen),
                    fleet_report.health.worstSeverity.c_str());
    }
    if (health_check) {
        if (fleet_report.health.alertsOpen != 0) {
            std::printf("health-check: FAIL (%llu alerts still open "
                        "at end of run)\n",
                        static_cast<unsigned long long>(
                            fleet_report.health.alertsOpen));
            health_ok = false;
        } else {
            std::printf("health-check: OK (%llu alerts raised, all "
                        "cleared)\n",
                        static_cast<unsigned long long>(
                            fleet_report.health.alertsRaised));
        }
    }

    if (!json_path.empty())
        writeTextFile(json_path, report.toJson(), "ForensicsReport");
    if (!trace_path.empty())
        writeTextFile(trace_path, trace.toChromeJson(), "trace");
    if (!metrics_path.empty()) {
        writeTextFile(metrics_path, registry.snapshotJson(),
                      "metrics");
    }
    if (!health_path.empty()) {
        writeTextFile(health_path, sched.healthTimeSeriesJsonl(),
                      "health time series");
    }

    if (check) {
        const bool ok = report.patientZeroMatch &&
                        report.infectionOrderMatch &&
                        report.campaignClassMatch;
        if (!ok)
            std::printf("--check FAILED: forensics conclusions "
                        "disagree with campaign ground truth\n");
        return ok && health_ok ? 0 : 1;
    }
    return health_ok ? 0 : 1;
}
